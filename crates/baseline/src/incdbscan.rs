//! IncDBSCAN — incremental exact DBSCAN (Ester et al., VLDB 1998).
//!
//! The state-of-the-art dynamic algorithm the paper compares against
//! (its Section 3). Semantics are **exact** DBSCAN: core statuses from
//! exact neighborhood counts, clusters from the exact core graph.
//!
//! * **Insertion**: one range query retrieves `B(p_new, eps)` (the *seed
//!   objects*); vicinity counts are bumped and the points reaching
//!   `MinPts` become core. Every new core point merges the cluster labels
//!   of the core points in its ball (the paper's absorption/merge cases);
//!   a new core point seeing no labeled neighbor starts a fresh cluster.
//!   Labels are never rewritten en masse — IncDBSCAN keeps a *merge
//!   history*, realized here as a union-find over label ids.
//! * **Deletion**: counts are decremented, demoted points drop out of the
//!   core graph, and the algorithm must discover whether the affected
//!   cluster **splits**. As in the original: one BFS thread starts from
//!   every seed (the still-core points adjacent to removed core-graph
//!   edges), all threads expand in round-robin lockstep over the core
//!   graph — each expansion step being a range query — threads that touch
//!   merge, and as soon as a single thread group remains the deletion
//!   concludes with no split. Otherwise every exhausted group has
//!   enumerated one side of the split and is relabeled wholesale.
//! * **C-group-by**: core points answer from their (union-find-resolved)
//!   label; border points are resolved at query time by one range query,
//!   honoring DBSCAN's multi-membership semantics (paper Section 2).
//!
//! The deletion path is exactly what the paper blames for IncDBSCAN's
//! two-orders-of-magnitude loss: splits trigger BFS whose cost is the size
//! of the smaller fragment *times* range-query cost. [`IncStats`] exposes
//! per-operation provenance so the benchmarks can attribute the spikes.

use crate::index::RangeIndex;
use dydbscan_conn::UnionFind;
use dydbscan_core::snapshot::{Anchors, SnapshotState};
use dydbscan_core::{
    ClusterSnapshot, ClustererStats, Clustering, DynamicClusterer, EpochHandle, FlushPhase,
    FlushPipeline, GroupBy, Params, PointId, QueryError,
};
use dydbscan_geom::{FxHashMap, Point};
use dydbscan_spatial::RTree;
use std::sync::Arc;

const NO_LABEL: u32 = u32::MAX;

/// Operation counters for cost provenance in benchmarks. The shared
/// batch/parallelism counters live in the engine's
/// [`FlushPipeline`] — see [`IncDbscan::flush_stats`].
#[derive(Debug, Default, Clone, Copy)]
pub struct IncStats {
    /// Range queries issued (updates and BFS expansions).
    pub range_queries: u64,
    /// Total points returned by range queries.
    pub points_touched: u64,
    /// BFS expansion steps across all deletions.
    pub bfs_expansions: u64,
    /// Deletions that split a cluster.
    pub splits: u64,
    /// Label merges (insertion-side cluster merges).
    pub label_merges: u64,
}

#[derive(Debug, Clone)]
struct Rec<const D: usize> {
    coords: Point<D>,
    /// Exact `|B(p, eps)|`, self included.
    count: u32,
    label: u32,
    alive: bool,
    core: bool,
}

/// Incremental exact DBSCAN over a pluggable range index (R-tree default).
///
/// # Example
///
/// ```
/// use dydbscan_baseline::IncDbscan;
/// use dydbscan_core::Params;
///
/// let mut c = IncDbscan::<2>::new(Params::new(1.0, 3));
/// let a = c.insert([0.0, 0.0]);
/// let b = c.insert([0.5, 0.0]);
/// let d = c.insert([0.0, 0.5]);
/// let g = c.group_by(&[a, b, d]);
/// assert_eq!(g.num_groups(), 1);
/// c.delete(a);
/// let g = c.group_by(&[b, d]);
/// assert!(g.is_noise(b));
/// ```
#[derive(Debug)]
pub struct IncDbscan<const D: usize, I: RangeIndex<D> = RTree<D>> {
    params: Params,
    index: I,
    recs: Vec<Rec<D>>,
    labels: UnionFind,
    alive: usize,
    stats: IncStats,
    scratch: Vec<(u32, f64)>,
    /// The batch flush pipeline: thread budget, persistent worker pool,
    /// shared flush counters. The baseline fans its per-point range
    /// queries out over it; everything else stays per-update.
    pipeline: FlushPipeline,
    /// The epoch-snapshot state behind the `&self` read path. The
    /// baseline's vertex space is *point ids*: a core point anchors to
    /// itself, a border point to the core points in its ball, and the
    /// label table resolves each core point's label through the
    /// merge-history union-find without path compression.
    snap: SnapshotState,
}

impl<const D: usize> IncDbscan<D, RTree<D>> {
    /// Creates an IncDBSCAN instance on an R-tree (the faithful setup).
    pub fn new(params: Params) -> Self {
        Self::with_index(params, RTree::default())
    }
}

impl<const D: usize> IncDbscan<D, crate::index::GridRangeIndex<D>> {
    /// Creates an IncDBSCAN instance on the uniform-grid backend
    /// (ablation: is the baseline's loss an index artifact?).
    pub fn new_grid(params: Params) -> Self {
        Self::with_index(params, crate::index::GridRangeIndex::with_side(params.eps))
    }
}

impl<const D: usize, I: RangeIndex<D>> IncDbscan<D, I> {
    /// Creates an instance over a caller-supplied index.
    pub fn with_index(params: Params, index: I) -> Self {
        params.validate();
        assert!(
            params.rho == 0.0,
            "IncDBSCAN is an exact algorithm; rho must be 0"
        );
        Self {
            params,
            index,
            recs: Vec::new(),
            labels: UnionFind::new(),
            alive: 0,
            stats: IncStats::default(),
            scratch: Vec::new(),
            pipeline: FlushPipeline::new(),
            snap: SnapshotState::new(),
        }
    }

    /// Sets the thread budget of the batched range-query phases
    /// (default: one worker per logical CPU; `1` = the exact sequential
    /// path). The clustering is bit-identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pipeline.set_threads(threads);
        self
    }

    /// The thread budget of the batched range-query phases.
    pub fn threads(&self) -> usize {
        self.pipeline.threads()
    }

    /// The shared flush-pipeline counters (batching + parallelism).
    pub fn flush_stats(&self) -> dydbscan_core::FlushStats {
        self.pipeline.stats()
    }

    /// The clustering parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Number of alive points.
    pub fn len(&self) -> usize {
        self.alive
    }

    /// True if no alive points.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Operation counters.
    pub fn stats(&self) -> IncStats {
        self.stats
    }

    /// Whether `id` is currently a core point.
    pub fn is_core(&self, id: PointId) -> bool {
        self.recs[id as usize].core
    }

    /// Whether `id` is alive.
    pub fn is_alive(&self, id: PointId) -> bool {
        self.recs.get(id as usize).is_some_and(|r| r.alive)
    }

    /// Coordinates of a point (also valid for deleted ids).
    pub fn coords(&self, id: PointId) -> Point<D> {
        self.recs[id as usize].coords
    }

    /// Ids of all alive points.
    pub fn alive_ids(&self) -> Vec<PointId> {
        (0..self.recs.len() as u32)
            .filter(|&i| self.recs[i as usize].alive)
            .collect()
    }

    fn range(&mut self, q: &Point<D>, out: &mut Vec<(u32, f64)>) {
        out.clear();
        self.index.collect_within(q, self.params.eps, out);
        self.stats.range_queries += 1;
        self.stats.points_touched += out.len() as u64;
    }

    /// Inserts a point; returns its id. Panics on NaN/infinite
    /// coordinates (see `DynamicClusterer::try_insert` for the fallible
    /// boundary) — admitted, they would corrupt R-tree node splits.
    pub fn insert(&mut self, p: Point<D>) -> PointId {
        dydbscan_core::validate_point(&p, 0).unwrap_or_else(|e| panic!("{e}"));
        let id = self.recs.len() as u32;
        self.recs.push(Rec {
            coords: p,
            count: 0,
            label: NO_LABEL,
            alive: true,
            core: false,
        });
        self.alive += 1;
        self.index.insert(p, id);
        // Seed objects: B(p, eps), p included (it is already indexed).
        let mut seeds = std::mem::take(&mut self.scratch);
        self.range(&p, &mut seeds);
        let min_pts = self.params.min_pts as u32;
        let mut new_cores: Vec<u32> = Vec::new();
        self.recs[id as usize].count = seeds.len() as u32;
        // Read-path dirt: the new point needs anchors; promotions below
        // additionally dirty every point in the promoted ball (their
        // anchor sets gain a core point).
        self.snap.mark(id);
        if seeds.len() as u32 >= min_pts {
            new_cores.push(id);
        }
        for &(q, _) in &seeds {
            if q == id {
                continue;
            }
            let r = &mut self.recs[q as usize];
            r.count += 1;
            if !r.core && r.count >= min_pts {
                new_cores.push(q);
            }
        }
        // Flip flags first so simultaneous promotions see each other.
        for &q in &new_cores {
            self.recs[q as usize].core = true;
        }
        // Label maintenance per new core point (creation / absorption /
        // merge).
        let mut ball = Vec::new();
        for &q in &new_cores {
            if q == id {
                ball.clear();
                ball.extend_from_slice(&seeds);
            } else {
                let qp = self.recs[q as usize].coords;
                let mut tmp = Vec::new();
                self.range(&qp, &mut tmp);
                ball.clear();
                ball.extend_from_slice(&tmp);
            }
            for &(r, _) in &ball {
                self.snap.mark(r);
            }
            let mut label = self.recs[q as usize].label;
            for &(r, _) in &ball {
                if r == q || !self.recs[r as usize].core {
                    continue;
                }
                let rl = self.recs[r as usize].label;
                if rl == NO_LABEL {
                    continue; // freshly promoted, not yet labeled
                }
                if label == NO_LABEL {
                    label = self.labels.find(rl);
                } else if !self.labels.same(label, rl) {
                    self.labels.union(label, rl);
                    self.stats.label_merges += 1;
                    label = self.labels.find(label);
                }
            }
            if label == NO_LABEL {
                label = self.labels.make_set();
            }
            self.recs[q as usize].label = label;
        }
        seeds.clear();
        self.scratch = seeds;
        id
    }

    /// Deletes a point by id. Panics on unknown / double deletes.
    pub fn delete(&mut self, id: PointId) {
        assert!(self.is_alive(id), "IncDBSCAN delete of dead id {id}");
        let p = self.recs[id as usize].coords;
        // Seed objects around the departing point (it is still indexed).
        let mut seeds = std::mem::take(&mut self.scratch);
        self.range(&p, &mut seeds);
        self.index.remove(&p, id);
        let was_core = self.recs[id as usize].core;
        {
            let r = &mut self.recs[id as usize];
            r.alive = false;
            r.core = false;
            r.label = NO_LABEL;
        }
        self.alive -= 1;
        // Read-path dirt: the departing point's ball loses it (and may
        // lose a core anchor); demotions below dirty their balls too.
        self.snap.mark_dead(id);
        let min_pts = self.params.min_pts as u32;
        // Decrement counts; collect demotions.
        let mut demoted: Vec<u32> = Vec::new();
        for &(q, _) in &seeds {
            if q == id {
                continue;
            }
            self.snap.mark(q);
            let r = &mut self.recs[q as usize];
            r.count -= 1;
            if r.core && r.count < min_pts {
                r.core = false;
                r.label = NO_LABEL;
                demoted.push(q);
            }
        }
        // BFS seeds: still-core endpoints of the removed core-graph edges.
        let mut bfs_seeds: Vec<u32> = Vec::new();
        if was_core {
            for &(q, _) in &seeds {
                if q != id && self.recs[q as usize].core {
                    bfs_seeds.push(q);
                }
            }
        }
        let mut tmp = Vec::new();
        for &q in &demoted {
            let qp = self.recs[q as usize].coords;
            self.range(&qp, &mut tmp);
            for &(r, _) in &tmp {
                self.snap.mark(r);
                if self.recs[r as usize].core {
                    bfs_seeds.push(r);
                }
            }
        }
        dydbscan_geom::radix_sort_u32(&mut bfs_seeds);
        bfs_seeds.dedup();
        seeds.clear();
        self.scratch = seeds;
        if bfs_seeds.len() > 1 {
            // Cheap pre-check from the original paper: if the seed objects
            // are directly connected among themselves (pairwise core-graph
            // edges within the seed set form one component), the cluster
            // cannot have split and the BFS is skipped.
            let groups = self.seed_components(&bfs_seeds);
            if groups.len() > 1 {
                self.split_check(&groups);
            }
        }
    }

    /// Inserts a batch in one index pass: every point is indexed first,
    /// then each batch point issues exactly **one** range query against
    /// the final set, which serves double duty as its seed set (own
    /// count + neighbor count bumps) *and* as the ball of its label
    /// round. Looped insertion instead re-queries a batch point's ball
    /// whenever a later neighbor promotes it, and its early queries see
    /// only a prefix of the batch. The final clustering is identical
    /// (exact counts over the final set; the label merges commute).
    pub fn insert_batch(&mut self, pts: &[Point<D>]) -> Vec<PointId> {
        if pts.len() < 2 {
            return pts.iter().map(|p| self.insert(*p)).collect();
        }
        dydbscan_core::validate_points(pts).unwrap_or_else(|e| panic!("{e}"));
        self.pipeline.begin_flush(pts.len());
        let batch_start = self.recs.len() as u32;
        let min_pts = self.params.min_pts as u32;

        // Phase 1: index the whole batch in one block — the R-tree
        // bulk-loads it by sort-tile packing instead of paying one
        // choose-leaf/split walk per point.
        let mut block: Vec<(Point<D>, u32)> = Vec::with_capacity(pts.len());
        let ids: Vec<u32> = pts
            .iter()
            .map(|p| {
                let id = self.recs.len() as u32;
                self.recs.push(Rec {
                    coords: *p,
                    count: 0,
                    label: NO_LABEL,
                    alive: true,
                    core: false,
                });
                self.alive += 1;
                self.snap.mark(id);
                block.push((*p, id));
                id
            })
            .collect();
        self.index.insert_block(&block);

        // Phase 2 (parallel): one range query per batch point against
        // the final, now-stable index, retained for reuse. Queries only
        // read the index; results come back in batch order.
        let seeds: Vec<Vec<(u32, f64)>> = {
            let (index, eps) = (&self.index, self.params.eps);
            self.pipeline.run(FlushPhase::Scan, pts.len(), |k| {
                let mut s = Vec::new();
                index.collect_within(&pts[k], eps, &mut s);
                s
            })
        };
        self.stats.range_queries += seeds.len() as u64;
        self.stats.points_touched += seeds.iter().map(|s| s.len() as u64).sum::<u64>();

        // Phase 3: counts and promotions. Batch points read their count
        // off their own (final-set) query; pre-existing points get one
        // bump per batch ball containing them and promote exactly when
        // they cross the threshold.
        let mut new_cores: Vec<u32> = Vec::new();
        for (k, s) in seeds.iter().enumerate() {
            self.recs[ids[k] as usize].count = s.len() as u32;
            if s.len() as u32 >= min_pts {
                new_cores.push(ids[k]);
            }
        }
        for s in &seeds {
            for &(q, _) in s {
                if q >= batch_start {
                    continue; // batch counts already final
                }
                let r = &mut self.recs[q as usize];
                r.count += 1;
                if !r.core && r.count == min_pts {
                    new_cores.push(q);
                }
            }
        }

        // Flip flags first so simultaneous promotions see each other.
        for &q in &new_cores {
            self.recs[q as usize].core = true;
        }

        // Phase 4: label maintenance per new core point (creation /
        // absorption / merge), reusing the retained balls for batch
        // points; only pre-existing promotions re-query.
        let mut ball = Vec::new();
        for &q in &new_cores {
            if q < batch_start {
                let qp = self.recs[q as usize].coords;
                self.range(&qp, &mut ball);
            }
            let b: &[(u32, f64)] = if q >= batch_start {
                &seeds[(q - batch_start) as usize]
            } else {
                &ball
            };
            // Read-path dirt: every point in a promoted ball gains a
            // core anchor candidate.
            for &(r, _) in b {
                self.snap.mark(r);
            }
            let mut label = self.recs[q as usize].label;
            for &(r, _) in b {
                if r == q || !self.recs[r as usize].core {
                    continue;
                }
                let rl = self.recs[r as usize].label;
                if rl == NO_LABEL {
                    continue; // promoted this flush, labeled by its own round
                }
                if label == NO_LABEL {
                    label = self.labels.find(rl);
                } else if !self.labels.same(label, rl) {
                    self.labels.union(label, rl);
                    self.stats.label_merges += 1;
                    label = self.labels.find(label);
                }
            }
            if label == NO_LABEL {
                label = self.labels.make_set();
            }
            self.recs[q as usize].label = label;
        }
        ids
    }

    /// Deletes a batch in one index pass: every point leaves the index
    /// first, then each deleted point issues exactly **one** range query
    /// against the surviving set to decrement neighbor counts, and the
    /// split adjudication — the BFS whose cost dominates IncDBSCAN
    /// deletions — runs **once for the whole batch** instead of once per
    /// deletion. The final clustering is identical to looped deletion
    /// (counts are exact over the survivors; the combined BFS discovers
    /// the same final core-graph components).
    pub fn delete_batch(&mut self, del_ids: &[PointId]) {
        if del_ids.len() < 2 {
            for &id in del_ids {
                self.delete(id);
            }
            return;
        }
        self.pipeline.begin_flush(del_ids.len());
        let min_pts = self.params.min_pts as u32;

        // Phase 1: pull the whole batch out of the index and the record
        // table, keeping coordinates and core-ness for seed discovery.
        let mut dead: Vec<(Point<D>, bool)> = Vec::with_capacity(del_ids.len());
        for &id in del_ids {
            assert!(self.is_alive(id), "IncDBSCAN delete of dead id {id}");
            let p = self.recs[id as usize].coords;
            let was_core = self.recs[id as usize].core;
            self.index.remove(&p, id);
            let r = &mut self.recs[id as usize];
            r.alive = false;
            r.core = false;
            r.label = NO_LABEL;
            self.alive -= 1;
            self.snap.mark_dead(id);
            dead.push((p, was_core));
        }

        // Phase 2: one range query per deleted point over the — now
        // stable — surviving set, fanned out over the pool; each
        // survivor's count then drops once per deleted ball containing
        // it. Seeds are collected now and re-filtered afterwards (a seed
        // can still be demoted by a later decrement).
        let balls: Vec<Vec<(u32, f64)>> = {
            let (index, eps) = (&self.index, self.params.eps);
            self.pipeline.run(FlushPhase::Scan, dead.len(), |k| {
                let mut s = Vec::new();
                index.collect_within(&dead[k].0, eps, &mut s);
                s
            })
        };
        self.stats.range_queries += balls.len() as u64;
        self.stats.points_touched += balls.iter().map(|b| b.len() as u64).sum::<u64>();
        let mut demoted: Vec<u32> = Vec::new();
        let mut bfs_seeds: Vec<u32> = Vec::new();
        for (ball, &(_, was_core)) in balls.iter().zip(&dead) {
            for &(q, _) in ball {
                // Read-path dirt: a survivor near a departed (possibly
                // core) point may lose an anchor.
                self.snap.mark(q);
                let r = &mut self.recs[q as usize];
                r.count -= 1;
                if r.core && r.count < min_pts {
                    r.core = false;
                    r.label = NO_LABEL;
                    demoted.push(q);
                }
            }
            if was_core {
                bfs_seeds.extend(ball.iter().map(|&(q, _)| q));
            }
        }
        let demoted_balls: Vec<Vec<(u32, f64)>> = {
            let (index, eps, recs) = (&self.index, self.params.eps, &self.recs);
            self.pipeline.run(FlushPhase::Scan, demoted.len(), |k| {
                let mut s = Vec::new();
                index.collect_within(&recs[demoted[k] as usize].coords, eps, &mut s);
                s
            })
        };
        self.stats.range_queries += demoted_balls.len() as u64;
        self.stats.points_touched += demoted_balls.iter().map(|b| b.len() as u64).sum::<u64>();
        for ball in &demoted_balls {
            for &(r, _) in ball {
                // Read-path dirt: a demotion removes an anchor from its
                // whole ball.
                self.snap.mark(r);
                bfs_seeds.push(r);
            }
        }
        bfs_seeds.retain(|&q| self.recs[q as usize].core);
        dydbscan_geom::radix_sort_u32(&mut bfs_seeds);
        bfs_seeds.dedup();

        // Phase 3: one split adjudication per affected *cluster*. A
        // split can only happen inside one former cluster, so seeds are
        // scoped by their (resolved) label first — a batch touching
        // several far-apart clusters must not compare their seeds
        // against each other, or every intact cluster would read as a
        // "split", be BFS-enumerated wholesale, and bump the splits
        // counter that looped deletion leaves at zero.
        //
        // One stable radix pass by label does the scoping: labels come
        // out ascending (the determinism the old hash-map + comparison
        // re-sort bought), and seed ids stay ascending within each label
        // because `bfs_seeds` is already sorted and the pass is stable —
        // no per-group re-sort needed.
        let mut by_label: Vec<(u32, u32)> = bfs_seeds
            .iter()
            .map(|&q| (self.labels.find(self.recs[q as usize].label), q))
            .collect();
        dydbscan_geom::radix_sort_by_key(&mut by_label, |&(l, _)| u64::from(l));
        let mut i = 0;
        while i < by_label.len() {
            let label = by_label[i].0;
            let j = i + by_label[i..].partition_point(|&(l, _)| l == label);
            if j - i > 1 {
                let seeds: Vec<u32> = by_label[i..j].iter().map(|&(_, q)| q).collect();
                let groups = self.seed_components(&seeds);
                if groups.len() > 1 {
                    self.split_check(&groups);
                }
            }
            i = j;
        }
    }

    /// Partitions the seed set into components of the core graph induced
    /// on the seeds alone (edges = pairs within `eps`). One component
    /// proves the cluster intact; several require the BFS to adjudicate.
    fn seed_components(&self, seeds: &[u32]) -> Vec<Vec<u32>> {
        let eps_sq = self.params.eps_sq();
        let mut uf = UnionFind::with_len(seeds.len());
        for i in 0..seeds.len() {
            let pi = self.recs[seeds[i] as usize].coords;
            for j in (i + 1)..seeds.len() {
                if uf.same(i as u32, j as u32) {
                    continue;
                }
                let pj = self.recs[seeds[j] as usize].coords;
                if dydbscan_geom::dist_sq(&pi, &pj) <= eps_sq {
                    uf.union(i as u32, j as u32);
                    if uf.num_sets() == 1 {
                        return vec![seeds.to_vec()];
                    }
                }
            }
        }
        let mut by_root: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (i, &s) in seeds.iter().enumerate() {
            by_root.entry(uf.find(i as u32)).or_default().push(s);
        }
        by_root.into_values().collect()
    }

    /// Round-robin lockstep multi-source BFS over the core graph,
    /// relabeling exhausted thread groups (paper Section 3, "Deletion").
    /// One thread starts per *seed component* (seeds already known to be
    /// interconnected share a thread).
    fn split_check(&mut self, seed_groups: &[Vec<u32>]) {
        let k = seed_groups.len();
        let mut threads = UnionFind::with_len(k);
        // point -> thread root that visited it
        let mut visited: FxHashMap<u32, u32> = FxHashMap::default();
        let mut queues: Vec<Vec<u32>> = vec![Vec::new(); k];
        // visited membership per original thread (merged lazily)
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut active: Vec<u32> = Vec::new();
        for (t, group) in seed_groups.iter().enumerate() {
            for &s in group {
                match visited.get(&s) {
                    Some(&prev) => {
                        threads.union(prev, t as u32);
                    }
                    None => {
                        visited.insert(s, t as u32);
                        queues[t].push(s);
                        members[t].push(s);
                    }
                }
            }
            active.push(t as u32);
        }
        let mut ball = Vec::new();
        loop {
            // Coalesce the active list to live group roots.
            let mut roots: Vec<u32> = active.iter().map(|&t| threads.find(t)).collect();
            roots.sort_unstable();
            roots.dedup();
            roots.retain(|&g| !queues[g as usize].is_empty());
            let running: Vec<u32> = roots;
            if running.len() <= 1 {
                // No split among the still-running side: every *finished*
                // group (exhausted queue) is a separate component and was
                // already relabeled below; the last runner keeps its label.
                break;
            }
            active = running.clone();
            // One expansion step per running group (lockstep).
            for g in running {
                let mut g = threads.find(g);
                let x = match queues[g as usize].pop() {
                    Some(x) => x,
                    None => continue, // merged away this round
                };
                self.stats.bfs_expansions += 1;
                let xp = self.recs[x as usize].coords;
                self.range(&xp, &mut ball);
                for &(y, _) in &ball {
                    if y == x || !self.recs[y as usize].core {
                        continue;
                    }
                    match visited.get(&y) {
                        None => {
                            visited.insert(y, g);
                            queues[g as usize].push(y);
                            members[g as usize].push(y);
                        }
                        Some(&h) => {
                            let hr = threads.find(h);
                            if hr != g {
                                // Threads meet: merge groups and queues.
                                threads.union(hr, g);
                                let root = threads.find(g);
                                let other = if root == g { hr } else { g };
                                let q = std::mem::take(&mut queues[other as usize]);
                                queues[root as usize].extend(q);
                                let m = std::mem::take(&mut members[other as usize]);
                                members[root as usize].extend(m);
                                // Continue the expansion under the merged
                                // root: pushing onto a drained non-root
                                // queue would strand frontier points.
                                g = root;
                            }
                        }
                    }
                }
                let g = threads.find(g);
                if queues[g as usize].is_empty() {
                    // This group enumerated a complete component: it is a
                    // split-off cluster. Relabel it with a fresh id.
                    self.stats.splits += 1;
                    let fresh = self.labels.make_set();
                    for &m in &members[g as usize] {
                        self.recs[m as usize].label = fresh;
                    }
                }
            }
        }
    }

    /// Refreshes (if dirty) and returns the current epoch snapshot: core
    /// points' labels are resolved through the merge-history union-find
    /// without path compression, and only points near the updates since
    /// the last read boundary get their anchors (in-ball core points)
    /// re-queried — fanned over the persistent worker pool when enough
    /// points are dirty.
    fn refresh(&self) -> Arc<ClusterSnapshot> {
        let eps = self.params.eps;
        // Field borrows (not `&self`) so the closure's captures are the
        // plain-data structures the workers actually read.
        let recs = &self.recs;
        let index = &self.index;
        self.snap.read_with_pool(
            self.recs.len(),
            || {
                self.recs
                    .iter()
                    .map(|r| {
                        if r.core {
                            self.labels.root_of(r.label) as u64
                        } else {
                            0 // never anchored to: only core ids are anchors
                        }
                    })
                    .collect()
            },
            |pid, emit| {
                let r = &recs[pid as usize];
                if !r.alive {
                    return; // died after it was marked dirty
                }
                if r.core {
                    emit(pid, true, Anchors::One(pid));
                } else {
                    let mut ball = Vec::new();
                    index.collect_within(&r.coords, eps, &mut ball);
                    let mut cores: Vec<u32> = ball
                        .into_iter()
                        .filter(|&(q, _)| recs[q as usize].core)
                        .map(|(q, _)| q)
                        .collect();
                    dydbscan_geom::radix_sort_u32(&mut cores);
                    cores.dedup();
                    emit(pid, false, Anchors::from_sorted(&cores));
                }
            },
            &self.pipeline,
        )
    }

    /// The current epoch snapshot — `Arc`-share it with reader threads
    /// and keep applying updates; their answers stay frozen at this
    /// epoch.
    pub fn snapshot(&self) -> Arc<ClusterSnapshot> {
        self.refresh()
    }

    /// Answers a C-group-by query (grouping by resolved cluster labels;
    /// border points honor DBSCAN's multi-membership semantics). Panics
    /// on dead ids; see [`try_group_by`](Self::try_group_by).
    pub fn group_by(&self, q: &[PointId]) -> GroupBy {
        self.refresh().group_by(q)
    }

    /// Fallible [`group_by`](Self::group_by): dead/unknown ids return
    /// [`QueryError::DeadPoint`] naming the id instead of panicking.
    pub fn try_group_by(&self, q: &[PointId]) -> Result<GroupBy, QueryError> {
        self.refresh().try_group_by(q)
    }

    /// The full clustering (`Q = P`), fanned across the persistent
    /// worker pool in id-range chunks — bit-identical to the sequential
    /// scan at every thread count.
    pub fn group_all(&self) -> Clustering {
        let snap = self.refresh();
        dydbscan_core::snapshot::group_all_pooled(&snap, &self.snap, &self.pipeline)
    }

    /// The pre-snapshot query walk (label resolution through the
    /// mutating union-find, border points by live range query): the
    /// differential-testing oracle the snapshot path is checked against.
    #[doc(hidden)]
    pub fn direct_group_by(&mut self, q: &[PointId]) -> GroupBy {
        let mut by_label: FxHashMap<u32, Vec<PointId>> = FxHashMap::default();
        let mut noise = Vec::new();
        let mut ball = Vec::new();
        for &pid in q {
            assert!(self.is_alive(pid), "query of dead id {pid}");
            if self.recs[pid as usize].core {
                let l = self.labels.find(self.recs[pid as usize].label);
                by_label.entry(l).or_default().push(pid);
            } else {
                let p = self.recs[pid as usize].coords;
                self.range(&p, &mut ball);
                let mut ls: Vec<u32> = ball
                    .iter()
                    .filter(|&&(r, _)| self.recs[r as usize].core)
                    .map(|&(r, _)| self.labels.find(self.recs[r as usize].label))
                    .collect();
                ls.sort_unstable();
                ls.dedup();
                if ls.is_empty() {
                    noise.push(pid);
                } else {
                    for l in ls {
                        by_label.entry(l).or_default().push(pid);
                    }
                }
            }
        }
        let mut out = GroupBy {
            groups: by_label.into_values().collect(),
            noise,
        };
        out.normalize();
        out
    }

    /// `Q = P` through [`direct_group_by`](Self::direct_group_by).
    #[doc(hidden)]
    pub fn direct_group_all(&mut self) -> Clustering {
        let ids = self.alive_ids();
        self.direct_group_by(&ids)
    }
}

impl<const D: usize, I: RangeIndex<D>> DynamicClusterer<D> for IncDbscan<D, I> {
    fn params(&self) -> &Params {
        IncDbscan::params(self)
    }

    fn len(&self) -> usize {
        IncDbscan::len(self)
    }

    fn supports_deletion(&self) -> bool {
        true
    }

    fn insert(&mut self, p: Point<D>) -> PointId {
        IncDbscan::insert(self, p)
    }

    fn delete(&mut self, id: PointId) {
        IncDbscan::delete(self, id)
    }

    fn is_core(&self, id: PointId) -> bool {
        IncDbscan::is_core(self, id)
    }

    fn coords(&self, id: PointId) -> Point<D> {
        IncDbscan::coords(self, id)
    }

    fn alive_ids(&self) -> Vec<PointId> {
        IncDbscan::alive_ids(self)
    }

    fn snapshot(&self) -> Arc<ClusterSnapshot> {
        IncDbscan::snapshot(self)
    }

    fn epoch_handle(&self) -> EpochHandle {
        self.snap.epoch_handle()
    }

    fn set_track_deltas(&mut self, on: bool) {
        self.snap.set_track_deltas(on);
    }

    fn group_by(&self, q: &[PointId]) -> GroupBy {
        IncDbscan::group_by(self, q)
    }

    fn try_group_by(&self, q: &[PointId]) -> Result<GroupBy, QueryError> {
        IncDbscan::try_group_by(self, q)
    }

    fn group_all(&self) -> Clustering {
        IncDbscan::group_all(self)
    }

    fn insert_batch(&mut self, pts: &[Point<D>]) -> Vec<PointId> {
        IncDbscan::insert_batch(self, pts)
    }

    fn delete_batch(&mut self, ids: &[PointId]) {
        IncDbscan::delete_batch(self, ids)
    }

    /// IncDBSCAN keeps a merge history, not an explicit edge set: only
    /// `range_queries`, `splits` and the shared flush counters are
    /// tracked; the graph-churn counters stay `0`, and so does
    /// `batch_cell_scans` — the grouped overrides save *queries* (one
    /// index pass per batch, one split adjudication per flush), not
    /// cell materializations, which the baseline does not have. The
    /// parallel counters report the pooled per-point range-query
    /// phases. Full provenance lives in [`IncStats`] on the concrete
    /// type.
    fn stats(&self) -> ClustererStats {
        let s = self.stats;
        ClustererStats {
            range_queries: s.range_queries,
            splits: s.splits,
            ..ClustererStats::default()
        }
        .with_flush(self.pipeline.stats())
        .with_snapshot(&self.snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::GridRangeIndex;
    use dydbscan_core::{brute_force_exact, relabel};
    use dydbscan_geom::SplitMix64;

    fn churn<I: RangeIndex<2>>(mut algo: IncDbscan<2, I>, seed: u64, steps: usize) {
        let params = *algo.params();
        let mut rng = SplitMix64::new(seed);
        let mut live: Vec<(PointId, Point<2>)> = Vec::new();
        for step in 0..steps {
            if live.is_empty() || rng.next_below(100) < 62 {
                let p = [rng.next_f64() * 10.0, rng.next_f64() * 10.0];
                live.push((algo.insert(p), p));
            } else {
                let i = rng.next_below(live.len() as u64) as usize;
                let (id, _) = live.swap_remove(i);
                algo.delete(id);
            }
            if (step + 1) % 40 == 0 {
                let pts: Vec<Point<2>> = live.iter().map(|&(_, p)| p).collect();
                let ids: Vec<PointId> = live.iter().map(|&(i, _)| i).collect();
                let got = algo.group_all();
                let want = relabel(&brute_force_exact(&pts, &params), &ids);
                assert_eq!(got, want, "seed {seed} step {step}");
            }
        }
    }

    #[test]
    fn rtree_churn_matches_bruteforce() {
        for seed in 0..4u64 {
            churn(IncDbscan::<2>::new(Params::new(1.0, 3)), seed + 10, 300);
        }
    }

    #[test]
    fn grid_churn_matches_bruteforce() {
        churn(
            IncDbscan::<2, GridRangeIndex<2>>::new_grid(Params::new(1.2, 4)),
            99,
            300,
        );
    }

    #[test]
    fn forced_split_is_detected() {
        // Two blobs joined by a single chain point; deleting it splits.
        let params = Params::new(1.0, 3);
        let mut algo = IncDbscan::<2>::new(params);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..6 {
            left.push(algo.insert([i as f64 * 0.3, 0.0]));
            right.push(algo.insert([4.0 + i as f64 * 0.3, 0.0]));
        }
        let bridge = algo.insert([2.4, 0.0]);
        let bridge2 = algo.insert([3.2, 0.0]);
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 1, "bridged: one cluster");
        algo.delete(bridge);
        algo.delete(bridge2);
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 2, "bridge removed: split into two");
        assert!(algo.stats().splits >= 1);
    }

    #[test]
    fn insertion_merge_case() {
        let params = Params::new(1.0, 2);
        let mut algo = IncDbscan::<2>::new(params);
        let a = algo.insert([0.0, 0.0]);
        let b = algo.insert([0.5, 0.0]);
        let c = algo.insert([5.0, 0.0]);
        let d = algo.insert([5.5, 0.0]);
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 2);
        // chain of bridges merges the two clusters
        for i in 1..9 {
            algo.insert([0.5 + i as f64 * 0.5, 0.0]);
        }
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 1);
        assert!(g.same_cluster(a, d));
        assert!(g.same_cluster(b, c));
        assert!(algo.stats().label_merges >= 1);
    }

    #[test]
    fn batched_updates_match_looped_updates() {
        // The grouped one-index-pass overrides must be semantically
        // invisible: same clustering as looped updates after every flush.
        let mut rng = SplitMix64::new(314);
        let params = Params::new(1.0, 3);
        let mut batched = IncDbscan::<2>::new(params);
        let mut looped = IncDbscan::<2>::new(params);
        let mut alive: Vec<PointId> = Vec::new();
        for round in 0..12 {
            if alive.len() > 30 && rng.next_below(10) < 4 {
                let take = (1 + rng.next_below(25) as usize).min(alive.len());
                let mut chunk = Vec::with_capacity(take);
                for _ in 0..take {
                    let i = rng.next_below(alive.len() as u64) as usize;
                    chunk.push(alive.swap_remove(i));
                }
                batched.delete_batch(&chunk);
                for &id in &chunk {
                    looped.delete(id);
                }
            } else {
                let take = 5 + rng.next_below(50) as usize;
                let pts: Vec<Point<2>> = (0..take)
                    .map(|_| [rng.next_f64() * 6.0, rng.next_f64() * 6.0])
                    .collect();
                let a = batched.insert_batch(&pts);
                let b: Vec<PointId> = pts.iter().map(|p| looped.insert(*p)).collect();
                assert_eq!(a, b, "round {round}");
                alive.extend(a);
            }
            let got = batched.group_all();
            assert_eq!(got, looped.group_all(), "round {round}");
            // and both must equal brute force (exact algorithm)
            let pts: Vec<Point<2>> = alive.iter().map(|&id| batched.coords(id)).collect();
            let want = relabel(&brute_force_exact(&pts, &params), &alive);
            assert_eq!(got, want, "round {round} vs brute force");
        }
        assert!(batched.flush_stats().batch_flushes > 0);
        assert!(
            batched.stats().range_queries < looped.stats().range_queries,
            "the grouped pipeline must save index passes ({} vs {})",
            batched.stats().range_queries,
            looped.stats().range_queries
        );
    }

    #[test]
    fn batched_split_detection_matches_looped() {
        // Deleting both bridge points in ONE batch must still split the
        // cluster, with a single combined adjudication.
        let params = Params::new(1.0, 3);
        let mut algo = IncDbscan::<2>::new(params);
        for i in 0..6 {
            algo.insert([i as f64 * 0.3, 0.0]);
            algo.insert([4.0 + i as f64 * 0.3, 0.0]);
        }
        let bridge = algo.insert([2.4, 0.0]);
        let bridge2 = algo.insert([3.2, 0.0]);
        assert_eq!(algo.group_all().groups.len(), 1);
        algo.delete_batch(&[bridge, bridge2]);
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 2, "bridge removed in one batch: split");
        assert!(algo.stats().splits >= 1);
    }

    #[test]
    fn batched_delete_across_unrelated_clusters_is_not_a_split() {
        // One batch deletes a core point from each of two far-apart
        // clusters. Neither cluster splits; the adjudication must be
        // scoped per cluster (seeds of A never race seeds of B), so the
        // splits counter stays 0 — as it does under looped deletion.
        let params = Params::new(1.0, 3);
        let mut algo = IncDbscan::<2>::new(params);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..6 {
            a.push(algo.insert([i as f64 * 0.3, 0.0]));
            b.push(algo.insert([100.0 + i as f64 * 0.3, 0.0]));
        }
        assert_eq!(algo.group_all().groups.len(), 2);
        algo.delete_batch(&[a[2], b[3]]);
        assert_eq!(algo.stats().splits, 0, "intact clusters are not splits");
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 2);
        let pts: Vec<Point<2>> = algo.alive_ids().iter().map(|&i| algo.coords(i)).collect();
        let want = relabel(&brute_force_exact(&pts, &params), &algo.alive_ids());
        assert_eq!(g, want);
    }

    #[test]
    fn min_pts_one_every_point_clusters() {
        let mut algo = IncDbscan::<2>::new(Params::new(1.0, 1));
        let a = algo.insert([0.0, 0.0]);
        let b = algo.insert([10.0, 0.0]);
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 2);
        assert!(!g.is_noise(a) && !g.is_noise(b));
    }

    #[test]
    fn delete_core_of_small_cluster() {
        let mut algo = IncDbscan::<2>::new(Params::new(1.0, 3));
        let a = algo.insert([0.0, 0.0]);
        let b = algo.insert([0.5, 0.0]);
        let c = algo.insert([0.0, 0.5]);
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 1);
        algo.delete(a);
        let g = algo.group_all();
        assert!(g.groups.is_empty());
        assert_eq!(g.noise.len(), 2);
        let _ = (b, c);
    }
}
