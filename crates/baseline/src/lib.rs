//! IncDBSCAN — the dynamic exact-DBSCAN baseline of the paper's
//! experiments (Ester, Kriegel, Sander, Wimmer, Xu: "Incremental
//! clustering for mining in a data warehousing environment", VLDB 1998).
//!
//! Reimplemented from scratch on top of the `dydbscan-spatial` R-tree (the
//! original's index family), with a uniform-grid backend available for the
//! `ablate_index` benchmark. See [`incdbscan`] for the algorithm and
//! [`index`] for the backends.

pub mod incdbscan;
pub mod index;

pub use incdbscan::{IncDbscan, IncStats};
pub use index::{GridRangeIndex, RangeIndex};
