//! Tier-1 sharded-ingest differential suite (ISSUE 10): the sharded
//! wrapper must be *bit-identical* to the unsharded engine it wraps —
//! same ids, same clusters, same noise — after **every** flush, for
//! every engine × approximation level × shard count combination the
//! builder accepts.
//!
//! Three workloads:
//!
//! * a clustered random workload spread across the whole cell space
//!   (every shard owns interior *and* boundary cells),
//! * a boundary-straddling chain along axis 0 that crosses every slab
//!   boundary and must stitch into a single cluster,
//! * a ghost-refresh churn workload (fully-dynamic only): blobs packed
//!   at regular axis-0 intervals are inserted, partially deleted, and
//!   re-inserted, so ghost-cell populations decay to zero and are
//!   re-created across flushes.
//!
//! Global ids are arrival-order in both the sharded wrapper and the raw
//! engines, so the *same* id sets feed `group_by` on both sides and
//! [`GroupBy::normalize`] makes the partitions directly comparable.

use dydbscan::geom::SplitMix64;
use dydbscan::{Algorithm, DbscanBuilder, DynamicClusterer};

const EPS: f64 = 1.0;
const MIN_PTS: usize = 4;

/// Shard counts exercised against every reference (1 = the wrapper's
/// own degenerate case, still distinct code from the raw engine).
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Approximation levels: exact and a coarse ρ that changes `eps_hi`,
/// the ghost reach, and the aBCP probe geometry.
const RHOS: [f64; 2] = [0.0, 0.25];

fn build(algo: Algorithm, rho: f64, shards: Option<usize>) -> Box<dyn DynamicClusterer<2>> {
    let mut b = DbscanBuilder::new(EPS, MIN_PTS).rho(rho).algorithm(algo);
    if let Some(s) = shards {
        b = b.shards(s);
    }
    // The CI matrix sweeps this (1/2/4 on 4-vCPU runners): every
    // equality below is also a bit-identical-at-every-thread-count
    // claim about the wrapper's concurrent shard flushes.
    if let Some(t) = std::env::var("DYDBSCAN_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        b = b.threads(t.max(1));
    }
    b.build::<2>().expect("valid configuration")
}

/// Asserts the subject and the reference agree exactly: same alive ids
/// and the same normalized cluster partition over them.
fn assert_equiv(ctx: &str, subject: &dyn DynamicClusterer<2>, reference: &dyn DynamicClusterer<2>) {
    let ids = reference.alive_ids();
    assert_eq!(subject.alive_ids(), ids, "{ctx}: alive id sets diverge");
    let got = subject.group_by(&ids).normalized();
    let want = reference.group_by(&ids).normalized();
    assert_eq!(got, want, "{ctx}: cluster partitions diverge");
}

/// Clustered random batch: points scattered tightly around centers that
/// span the whole `[0, extent)²` box, so every axis-0 slab owns both
/// cluster cores and sparse noise.
fn clustered_batch(rng: &mut SplitMix64, n: usize, extent: f64) -> Vec<[f64; 2]> {
    (0..n)
        .map(|_| {
            let cx = rng.next_f64() * extent;
            let cy = rng.next_f64() * extent;
            // ~70% of points hug a center (dense, cluster-forming);
            // the rest land anywhere (noise + bridges).
            if rng.next_below(10) < 7 {
                [
                    cx + (rng.next_f64() - 0.5) * 1.2,
                    cy + (rng.next_f64() - 0.5) * 1.2,
                ]
            } else {
                [cx, cy]
            }
        })
        .collect()
}

#[test]
fn sharded_matches_unsharded_on_clustered_workload() {
    for &(algo, name) in &[
        (Algorithm::SemiDynamic, "semi"),
        (Algorithm::FullyDynamic, "full"),
    ] {
        for &rho in &RHOS {
            let mut reference = build(algo, rho, None);
            let mut subjects: Vec<(usize, Box<dyn DynamicClusterer<2>>)> = SHARD_COUNTS
                .iter()
                .map(|&s| (s, build(algo, rho, Some(s))))
                .collect();
            let mut rng = SplitMix64::new(0x10_5EED ^ (rho.to_bits().rotate_left(7)));
            for round in 0..6 {
                let batch = clustered_batch(&mut rng, 96, 96.0);
                let ids = reference.insert_batch(&batch);
                for (s, subject) in &mut subjects {
                    let got = subject.insert_batch(&batch);
                    assert_eq!(got, ids, "{name} rho={rho} S={s}: ids diverge");
                    assert_equiv(
                        &format!("{name} rho={rho} S={s} round={round} (insert)"),
                        subject.as_ref(),
                        reference.as_ref(),
                    );
                }
                if reference.supports_deletion() && round % 2 == 1 {
                    // Delete a deterministic third of everything alive.
                    let doomed: Vec<_> = reference
                        .alive_ids()
                        .into_iter()
                        .filter(|id| id % 3 == 0)
                        .collect();
                    reference.delete_batch(&doomed);
                    for (s, subject) in &mut subjects {
                        subject.delete_batch(&doomed);
                        assert_equiv(
                            &format!("{name} rho={rho} S={s} round={round} (delete)"),
                            subject.as_ref(),
                            reference.as_ref(),
                        );
                    }
                }
            }
        }
    }
}

/// A chain along axis 0 with sub-`eps` spacing crosses every slab
/// boundary: the stitched composed snapshot must report one cluster,
/// and the partition must match the raw engine after every chunk.
#[test]
fn boundary_straddling_chain_matches_and_stitches() {
    for &(algo, name) in &[
        (Algorithm::SemiDynamic, "semi"),
        (Algorithm::FullyDynamic, "full"),
    ] {
        for &rho in &RHOS {
            let mut reference = build(algo, rho, None);
            let mut subjects: Vec<(usize, Box<dyn DynamicClusterer<2>>)> = SHARD_COUNTS
                .iter()
                .map(|&s| (s, build(algo, rho, Some(s))))
                .collect();
            // 160 links at 0.4 spacing = 64 units of chain: several
            // slab widths at every shard count and both ρ levels.
            let chain: Vec<[f64; 2]> = (0..160)
                .map(|i| [i as f64 * 0.4, (i % 3) as f64 * 0.05])
                .collect();
            let mut all_ids = Vec::new();
            for (c, chunk) in chain.chunks(32).enumerate() {
                let ids = reference.insert_batch(chunk);
                all_ids.extend_from_slice(&ids);
                for (s, subject) in &mut subjects {
                    assert_eq!(
                        subject.insert_batch(chunk),
                        ids,
                        "{name} rho={rho} S={s}: chain ids diverge"
                    );
                    assert_equiv(
                        &format!("{name} rho={rho} S={s} chunk={c} (chain)"),
                        subject.as_ref(),
                        reference.as_ref(),
                    );
                }
            }
            for (s, subject) in &subjects {
                let groups = subject.group_by(&all_ids);
                assert_eq!(
                    groups.num_groups(),
                    1,
                    "{name} rho={rho} S={s}: the chain must stitch into one cluster"
                );
                assert!(groups.same_cluster(all_ids[0], *all_ids.last().unwrap()));
            }
        }
    }
}

/// Ghost-refresh churn: dense blobs at regular axis-0 intervals (many
/// of them exactly on slab boundaries) are inserted, partially deleted
/// until their ghost populations decay, then re-inserted. Exercises
/// ghost-cell create → drain → re-create across flushes.
#[test]
fn ghost_refresh_churn_matches_unsharded() {
    for &rho in &RHOS {
        let mut reference = build(Algorithm::FullyDynamic, rho, None);
        let mut subjects: Vec<(usize, Box<dyn DynamicClusterer<2>>)> = SHARD_COUNTS
            .iter()
            .map(|&s| (s, build(Algorithm::FullyDynamic, rho, Some(s))))
            .collect();
        let blob = |x0: f64| -> Vec<[f64; 2]> {
            (0..12)
                .map(|i| [x0 + (i % 4) as f64 * 0.3, (i / 4) as f64 * 0.3])
                .collect()
        };
        let mut era_ids: Vec<Vec<dydbscan::PointId>> = Vec::new();
        for era in 0..3 {
            // Blobs every ~4 cells along axis 0 across 64 units: some
            // land on a slab boundary at every shard count.
            let mut ids = Vec::new();
            for k in 0..16 {
                let batch = blob(k as f64 * 4.0 + era as f64 * 0.1);
                let got = reference.insert_batch(&batch);
                ids.extend_from_slice(&got);
                for (s, subject) in &mut subjects {
                    assert_eq!(
                        subject.insert_batch(&batch),
                        got,
                        "rho={rho} S={s} era={era}: blob ids diverge"
                    );
                }
            }
            for (s, subject) in &subjects {
                assert_equiv(
                    &format!("rho={rho} S={s} era={era} (blobs in)"),
                    subject.as_ref(),
                    reference.as_ref(),
                );
            }
            era_ids.push(ids);
            // Delete the previous era wholesale: every ghost replica
            // created for it must drain without disturbing survivors.
            if era > 0 {
                let doomed = era_ids[era - 1].clone();
                reference.delete_batch(&doomed);
                for (s, subject) in &mut subjects {
                    subject.delete_batch(&doomed);
                    assert_equiv(
                        &format!("rho={rho} S={s} era={era} (era-{} out)", era - 1),
                        subject.as_ref(),
                        reference.as_ref(),
                    );
                }
            }
        }
    }
}

/// The one engine sharding does not apply to: the IncDBSCAN baseline
/// keeps no cell-partitionable state, and the builder must say so
/// rather than silently ignoring `.shards`.
#[test]
fn incdbscan_rejects_sharding() {
    let err = DbscanBuilder::new(EPS, MIN_PTS)
        .rho(0.0)
        .algorithm(Algorithm::IncDbscan)
        .shards(4)
        .check()
        .expect_err("IncDBSCAN + shards must be rejected");
    assert!(
        err.to_string().contains("shard"),
        "rejection must name the sharding conflict: {err}"
    );
}
