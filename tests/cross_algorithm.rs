//! Cross-algorithm integration tests: every implementation in the
//! workspace must agree on the same data.
//!
//! At `rho = 0` all variants compute *exact* DBSCAN, so their outputs must
//! be identical — across the semi-dynamic structure (Theorem 1), the
//! fully-dynamic structure (Theorem 4), IncDBSCAN (both index backends),
//! the grid-based static algorithm and the brute-force reference. At
//! `rho > 0` the approximate variants must satisfy the sandwich guarantee
//! (Theorem 3) against the exact clusterings at both radii.

use dydbscan::baseline::GridRangeIndex;
use dydbscan::conn::NaiveConnectivity;
use dydbscan::core::full::FullDynDbscan;
use dydbscan::geom::{Point, SplitMix64};
use dydbscan::{
    brute_force_exact, check_sandwich, relabel, static_cluster, Algorithm, ConnectivityBackend,
    DbscanBuilder, DynamicClusterer, IncDbscan, IndexBackend, Op, Params, PointId, SemiDynDbscan,
    WorkloadSpec,
};

fn random_points<const D: usize>(seed: u64, n: usize, extent: f64) -> Vec<Point<D>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| std::array::from_fn(|_| rng.next_f64() * extent))
        .collect()
}

#[test]
fn all_exact_variants_agree_on_insert_only_data() {
    for seed in 0..3u64 {
        let pts = random_points::<2>(seed + 50, 300, 14.0);
        let params = Params::new(1.0, 4);
        let want = brute_force_exact(&pts, &params);

        assert_eq!(static_cluster(&pts, &params), want, "static grid");

        let mut semi = SemiDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| semi.insert(*p)).collect();
        assert_eq!(semi.group_all(), relabel(&want, &ids), "semi-dynamic");

        let mut full = FullDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| full.insert(*p)).collect();
        assert_eq!(full.group_all(), relabel(&want, &ids), "fully-dynamic");

        let mut inc = IncDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| inc.insert(*p)).collect();
        assert_eq!(inc.group_all(), relabel(&want, &ids), "IncDBSCAN rtree");

        let mut incg = IncDbscan::<2, GridRangeIndex<2>>::new_grid(params);
        let ids: Vec<PointId> = pts.iter().map(|p| incg.insert(*p)).collect();
        assert_eq!(incg.group_all(), relabel(&want, &ids), "IncDBSCAN grid");
    }
}

#[test]
fn fully_dynamic_exact_agrees_with_incdbscan_under_churn() {
    // Two independent dynamic exact algorithms must produce identical
    // groupings after every batch of updates.
    let mut rng = SplitMix64::new(777);
    let params = Params::new(1.1, 3);
    let mut full = FullDynDbscan::<2>::new(params);
    let mut inc = IncDbscan::<2>::new(params);
    let mut live: Vec<PointId> = Vec::new();
    for step in 0..500 {
        if live.is_empty() || rng.next_below(100) < 60 {
            let p = [rng.next_f64() * 12.0, rng.next_f64() * 12.0];
            let a = full.insert(p);
            let b = inc.insert(p);
            assert_eq!(a, b, "id schemes must align");
            live.push(a);
        } else {
            let i = rng.next_below(live.len() as u64) as usize;
            let id = live.swap_remove(i);
            full.delete(id);
            inc.delete(id);
        }
        if step % 50 == 49 {
            assert_eq!(full.group_all(), inc.group_all(), "step {step}");
            // and on a random sub-query
            if live.len() >= 4 {
                let q: Vec<PointId> = live.iter().copied().step_by(4).collect();
                assert_eq!(full.group_by(&q), inc.group_by(&q), "subquery {step}");
            }
        }
    }
}

#[test]
fn approximate_variants_sandwich_against_both_radii() {
    let pts = random_points::<3>(31, 260, 8.0);
    let rho = 0.2;
    let lo = Params::new(1.4, 4);
    let hi = Params::new(1.4 * (1.0 + rho), 4);
    let c1 = brute_force_exact(&pts, &lo);
    let c2 = brute_force_exact(&pts, &hi);

    let approx = Params::new(1.4, 4).with_rho(rho);
    let stat = static_cluster(&pts, &approx);
    check_sandwich(&c1, &stat, &c2).expect("static approx sandwich");

    let mut semi = SemiDynDbscan::<3>::new(approx);
    let ids: Vec<PointId> = pts.iter().map(|p| semi.insert(*p)).collect();
    check_sandwich(&relabel(&c1, &ids), &semi.group_all(), &relabel(&c2, &ids))
        .expect("semi-dynamic sandwich");

    let mut full = FullDynDbscan::<3>::new(approx);
    let ids: Vec<PointId> = pts.iter().map(|p| full.insert(*p)).collect();
    check_sandwich(&relabel(&c1, &ids), &full.group_all(), &relabel(&c2, &ids))
        .expect("fully-dynamic sandwich");
}

#[test]
fn connectivity_backends_are_interchangeable() {
    let mut rng = SplitMix64::new(4);
    let params = Params::new(1.0, 3).with_rho(0.05);
    let mut hdt = FullDynDbscan::<2>::new(params);
    let mut naive: FullDynDbscan<2, NaiveConnectivity> =
        FullDynDbscan::with_connectivity(params, NaiveConnectivity::new());
    let mut live = Vec::new();
    for _ in 0..400 {
        if live.is_empty() || rng.next_below(10) < 6 {
            let p = [rng.next_f64() * 9.0, rng.next_f64() * 9.0];
            let a = hdt.insert(p);
            naive.insert(p);
            live.push(a);
        } else {
            let i = rng.next_below(live.len() as u64) as usize;
            let id = live.swap_remove(i);
            hdt.delete(id);
            naive.delete(id);
        }
    }
    assert_eq!(hdt.group_all(), naive.group_all());
}

/// Every exact engine reachable through the builder, as a trait object.
fn exact_fleet(eps: f64, min_pts: usize) -> Vec<(&'static str, Box<dyn DynamicClusterer<2>>)> {
    let b = DbscanBuilder::new(eps, min_pts);
    vec![
        (
            "full/hdt",
            b.algorithm(Algorithm::FullyDynamic).build::<2>().unwrap(),
        ),
        (
            "full/naive",
            b.algorithm(Algorithm::FullyDynamic)
                .connectivity(ConnectivityBackend::Naive)
                .build::<2>()
                .unwrap(),
        ),
        (
            "inc/rtree",
            b.algorithm(Algorithm::IncDbscan)
                .index(IndexBackend::RTree)
                .build::<2>()
                .unwrap(),
        ),
        (
            "inc/grid",
            b.algorithm(Algorithm::IncDbscan)
                .index(IndexBackend::Grid)
                .build::<2>()
                .unwrap(),
        ),
    ]
}

#[test]
fn dyn_trait_parity_on_seed_spreader_workload_exact() {
    // Satellite requirement: drive all algorithms through
    // `Box<dyn DynamicClusterer>` on a seed-spreader workload and assert
    // identical exact clusterings at rho = 0 — including every
    // intermediate C-group-by answer, resolved via the trait's `apply`.
    let w = WorkloadSpec::full(1_500, 20).build::<2>();
    let (eps, min_pts) = (200.0, 10);
    let mut fleet = exact_fleet(eps, min_pts);
    let mut id_maps: Vec<Vec<PointId>> = vec![Vec::new(); fleet.len()];
    for (k, op) in w.ops.iter().enumerate() {
        let mut results = Vec::new();
        for ((name, algo), ids) in fleet.iter_mut().zip(&mut id_maps) {
            results.push((*name, algo.apply(op, ids)));
        }
        let (base_name, base) = &results[0];
        for (name, r) in &results[1..] {
            assert_eq!(r, base, "op {k}: {name} disagrees with {base_name}");
        }
    }
    // final full clusterings coincide too (id schemes align: every engine
    // numbers insertions identically)
    let finals: Vec<_> = fleet
        .iter_mut()
        .map(|(name, algo)| (*name, algo.group_all()))
        .collect();
    for (name, c) in &finals[1..] {
        assert_eq!(c, &finals[0].1, "{name} final clustering");
    }
    // the semi-dynamic engine agrees on the insertion-only prefix order:
    // replay only the insertions and compare against brute force
    let mut semi = DbscanBuilder::new(eps, min_pts)
        .algorithm(Algorithm::SemiDynamic)
        .build::<2>()
        .unwrap();
    let pts: Vec<Point<2>> = w
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Insert(p) => Some(*p),
            _ => None,
        })
        .collect();
    let ids = semi.insert_batch(&pts);
    let want = relabel(&brute_force_exact(&pts, &Params::new(eps, min_pts)), &ids);
    assert_eq!(semi.group_all(), want, "semi-dynamic on insertion prefix");
}

#[test]
fn dyn_trait_sandwich_containment_on_seed_spreader_workload() {
    // rho > 0: the approximate engines driven through the trait must
    // sandwich between the exact clusterings at eps and (1+rho)*eps.
    let w = WorkloadSpec::full(1_200, 21).build::<2>();
    let (eps, min_pts, rho) = (200.0, 10, 0.25);
    let mut approx: Vec<(&str, Box<dyn DynamicClusterer<2>>)> = vec![
        (
            "full/hdt",
            DbscanBuilder::new(eps, min_pts)
                .rho(rho)
                .build::<2>()
                .unwrap(),
        ),
        (
            "full/naive",
            DbscanBuilder::new(eps, min_pts)
                .rho(rho)
                .connectivity(ConnectivityBackend::Naive)
                .build::<2>()
                .unwrap(),
        ),
    ];
    let mut id_maps: Vec<Vec<PointId>> = vec![Vec::new(); approx.len()];
    let mut alive: Vec<(PointId, Point<2>)> = Vec::new();
    for op in &w.ops {
        for ((_, algo), ids) in approx.iter_mut().zip(&mut id_maps) {
            algo.apply(op, ids);
        }
        match op {
            Op::Insert(p) => alive.push((*id_maps[0].last().unwrap(), *p)),
            Op::Delete(o) => {
                let id = id_maps[0][*o as usize];
                let pos = alive.iter().position(|&(i, _)| i == id).unwrap();
                alive.swap_remove(pos);
            }
            Op::Query(_) => {}
        }
    }
    let pts: Vec<Point<2>> = alive.iter().map(|&(_, p)| p).collect();
    let aids: Vec<PointId> = alive.iter().map(|&(i, _)| i).collect();
    let c1 = relabel(&brute_force_exact(&pts, &Params::new(eps, min_pts)), &aids);
    let c2 = relabel(
        &brute_force_exact(&pts, &Params::new(eps * (1.0 + rho), min_pts)),
        &aids,
    );
    for (name, algo) in &mut approx {
        let got = algo.group_all();
        check_sandwich(&c1, &got, &c2).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn semi_and_full_agree_at_rho_zero_insert_only() {
    let pts = random_points::<5>(91, 150, 5.0);
    let params = Params::new(1.8, 3);
    let mut semi = SemiDynDbscan::<5>::new(params);
    let mut full = FullDynDbscan::<5>::new(params);
    for p in &pts {
        semi.insert(*p);
        full.insert(*p);
    }
    assert_eq!(semi.group_all(), full.group_all());
}
