//! Lifecycle of the persistent flush crew: lazily spawned by the first
//! flush phase that goes parallel, parked between flushes and reused,
//! rebuilt when the thread budget changes, joined cleanly on drop — and
//! semantically invisible throughout: interleaved batched updates
//! through the shared `FlushPipeline` must match the looped sequential
//! path on all three engines.

use dydbscan::geom::{Point, SplitMix64};
use dydbscan::{
    seed_spreader, Algorithm, DbscanBuilder, FullDynDbscan, IncDbscan, Params, PointId,
    SemiDynDbscan,
};

const EPS: f64 = 200.0; // PaperGrid::default_eps(2)
const MIN_PTS: usize = 10;

fn params() -> Params {
    Params::new(EPS, MIN_PTS)
}

#[test]
fn pool_spawn_is_lazy_and_reused_between_flushes() {
    let pts = seed_spreader::<2>(20_000, 11);
    let mut c = FullDynDbscan::<2>::new(params()).with_threads(4);
    assert!(!c.pool_spawned(), "nothing spawned at construction");
    c.insert(pts[0]);
    assert!(!c.pool_spawned(), "per-op updates never touch the pool");
    c.insert_batch(&pts[1..10_001]);
    assert!(c.pool_spawned(), "a big flush spawns the crew");
    let after_first = c.flush_stats().pool_reuse_count;
    c.insert_batch(&pts[10_001..]);
    assert!(
        c.flush_stats().pool_reuse_count > after_first,
        "the second flush must reuse the parked crew, not respawn it"
    );
    assert!(c.flush_stats().phase1_parallel_tasks > 0, "placement pools");
    assert!(c.flush_stats().parallel_cell_tasks > 0, "cell scans pool");
}

#[test]
fn sequential_budget_never_spawns() {
    let pts = seed_spreader::<2>(8_000, 3);
    let mut semi = SemiDynDbscan::<2>::new(params()).with_threads(1);
    semi.insert_batch(&pts);
    assert!(!semi.pool_spawned(), "threads(1) is the inline path");
    let s = semi.flush_stats();
    assert_eq!(s.parallel_workers, 0);
    assert_eq!(s.pool_reuse_count, 0);
    assert_eq!(s.phase1_parallel_tasks, 0);
    assert_eq!(s.gum_parallel_rounds, 0);
}

#[test]
fn threads_change_rebuilds_the_crew() {
    let pts = seed_spreader::<2>(24_000, 7);
    let mut c = SemiDynDbscan::<2>::new(params()).with_threads(2);
    c.insert_batch(&pts[..8_000]);
    assert!(c.pool_spawned());
    c = c.with_threads(4);
    assert_eq!(c.threads(), 4);
    assert!(
        !c.pool_spawned(),
        "a budget change tears the old crew down immediately"
    );
    c.insert_batch(&pts[8_000..16_000]);
    assert!(c.pool_spawned(), "the next flush respawns at the new size");
    c = c.with_threads(4); // same budget: the parked crew survives
    assert!(c.pool_spawned());
    c.insert_batch(&pts[16_000..]);
    assert!(c.flush_stats().parallel_workers > 0);
}

#[test]
fn drop_joins_the_parked_crew() {
    // Dropping a clusterer whose crew is parked must terminate promptly
    // (the test hangs otherwise); dropping one that never spawned is a
    // no-op.
    let pts = seed_spreader::<2>(10_000, 5);
    let mut c = FullDynDbscan::<2>::new(params()).with_threads(4);
    let ids = c.insert_batch(&pts);
    c.delete_batch(&ids[..5_000]);
    assert!(c.pool_spawned());
    drop(c);
    let c2 = FullDynDbscan::<2>::new(params()).with_threads(4);
    drop(c2);
}

#[test]
fn incdbscan_pools_its_batched_range_queries() {
    let pts = seed_spreader::<2>(4_000, 9);
    let mut c = IncDbscan::<2>::new(Params::new(EPS, MIN_PTS)).with_threads(4);
    let ids = c.insert_batch(&pts);
    let s = c.flush_stats();
    assert!(s.parallel_workers > 0, "insert flush pools its queries");
    c.delete_batch(&ids[..2_000]);
    assert!(c.flush_stats().parallel_workers > s.parallel_workers);
    let mut seq = IncDbscan::<2>::new(Params::new(EPS, MIN_PTS)).with_threads(1);
    seq.insert_batch(&pts);
    assert_eq!(seq.flush_stats().parallel_workers, 0);
}

/// Deterministic property test: interleaved `insert_batch` /
/// `delete_batch` flushes through the shared `FlushPipeline` must
/// produce the same clustering and core flags as the looped per-op
/// path, for every engine, after every round (`rho = 0`: exactness
/// forces equality, don't-cares included).
fn batched_matches_looped(algo: Algorithm, seed: u64) {
    let pool = seed_spreader::<2>(1_500, seed);
    let build = || {
        DbscanBuilder::new(EPS, MIN_PTS)
            .algorithm(algo)
            .threads(3)
            .build::<2>()
            .unwrap()
    };
    let mut batched = build();
    let mut looped = build();
    let deletions = batched.supports_deletion();
    let mut rng = SplitMix64::new(seed ^ 0xBEEF);
    let mut next = 0usize;
    let mut alive: Vec<PointId> = Vec::new();
    for round in 0..24 {
        let label = format!("{algo:?} seed={seed} round={round}");
        if deletions && alive.len() > 100 && rng.next_below(10) < 4 {
            let take = (1 + rng.next_below(140) as usize).min(alive.len());
            let mut chunk = Vec::with_capacity(take);
            for _ in 0..take {
                let i = rng.next_below(alive.len() as u64) as usize;
                chunk.push(alive.swap_remove(i));
            }
            batched.delete_batch(&chunk);
            for &id in &chunk {
                looped.delete(id);
            }
        } else {
            let take = (1 + rng.next_below(180) as usize).min(pool.len() - next);
            if take == 0 {
                break;
            }
            let chunk: &[Point<2>] = &pool[next..next + take];
            next += take;
            let a = batched.insert_batch(chunk);
            let b: Vec<PointId> = chunk.iter().map(|p| looped.insert(*p)).collect();
            assert_eq!(a, b, "{label}: id sequences must align");
            alive.extend(a);
        }
        assert_eq!(batched.group_all(), looped.group_all(), "{label}");
        for &id in &alive {
            assert_eq!(
                batched.is_core(id),
                looped.is_core(id),
                "{label}: core of {id}"
            );
        }
    }
    assert!(next > 0, "workload must have run");
}

#[test]
fn flush_pipeline_matches_looped_on_all_engines() {
    for algo in [
        Algorithm::SemiDynamic,
        Algorithm::FullyDynamic,
        Algorithm::IncDbscan,
    ] {
        for seed in [41u64, 42] {
            batched_matches_looped(algo, seed);
        }
    }
}
