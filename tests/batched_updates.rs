//! Batched-vs-looped equivalence: the grouped `insert_batch` /
//! `delete_batch` pipelines must be semantically invisible.
//!
//! * At `rho = 0` every engine's batched clustering is **identical** to
//!   applying the same updates one at a time — checked through
//!   `Box<dyn DynamicClusterer>` on seed-spreader workloads, under random
//!   interleavings of batch sizes, and after every flush.
//! * At `rho > 0` the batched result must satisfy the Theorem 3 sandwich
//!   against brute-force exact clusterings at both radii (batched and
//!   looped runs may legally resolve don't-care points differently).
//! * The `ClustererStats` batch counters must expose the amortization
//!   (updates per flush, cells materialized per flush) — including the
//!   baseline's grouped one-index-pass overrides, which count flushes
//!   but have no cells to scan.

use dydbscan::geom::{Point, SplitMix64};
use dydbscan::{
    brute_force_exact, check_sandwich, relabel, seed_spreader, Algorithm, DbscanBuilder,
    DynamicClusterer, Params, PointId,
};

const EPS: f64 = 200.0; // PaperGrid::default_eps(2)
const MIN_PTS: usize = 10;

fn engines(rho: f64) -> Vec<(&'static str, Box<dyn DynamicClusterer<2>>)> {
    let mut out: Vec<(&'static str, Box<dyn DynamicClusterer<2>>)> = vec![
        (
            "semi",
            DbscanBuilder::new(EPS, MIN_PTS)
                .rho(rho)
                .algorithm(Algorithm::SemiDynamic)
                .build::<2>()
                .unwrap(),
        ),
        (
            "full",
            DbscanBuilder::new(EPS, MIN_PTS)
                .rho(rho)
                .algorithm(Algorithm::FullyDynamic)
                .build::<2>()
                .unwrap(),
        ),
    ];
    if rho == 0.0 {
        out.push((
            "incdbscan",
            DbscanBuilder::new(EPS, MIN_PTS)
                .algorithm(Algorithm::IncDbscan)
                .build::<2>()
                .unwrap(),
        ));
    }
    out
}

/// Split `pts` into batches whose sizes cycle through `sizes`.
fn batches<'a>(pts: &'a [Point<2>], sizes: &[usize]) -> Vec<&'a [Point<2>]> {
    let mut out = Vec::new();
    let mut at = 0;
    let mut k = 0;
    while at < pts.len() {
        let take = sizes[k % sizes.len()].min(pts.len() - at);
        out.push(&pts[at..at + take]);
        at += take;
        k += 1;
    }
    out
}

#[test]
fn batched_inserts_equal_looped_inserts_at_rho_zero() {
    let pts = seed_spreader::<2>(900, 41);
    for (name, mut batched) in engines(0.0) {
        let mut looped = engines(0.0)
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1;
        for chunk in batches(&pts, &[1, 7, 64, 3, 128, 2]) {
            let a = batched.insert_batch(chunk);
            let b: Vec<PointId> = chunk.iter().map(|p| looped.insert(*p)).collect();
            assert_eq!(a, b, "{name}: id sequences must align");
            assert_eq!(
                batched.group_all(),
                looped.group_all(),
                "{name}: clusterings diverged after a flush"
            );
        }
        assert_eq!(batched.len(), pts.len());
    }
}

#[test]
fn batched_deletes_equal_looped_deletes_at_rho_zero() {
    let pts = seed_spreader::<2>(800, 42);
    for (name, mut batched) in engines(0.0) {
        if !batched.supports_deletion() {
            continue;
        }
        let mut looped = engines(0.0)
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1;
        let ids = batched.insert_batch(&pts);
        assert_eq!(ids, looped.insert_batch(&pts));
        let mut rng = SplitMix64::new(7);
        let mut alive = ids;
        while !alive.is_empty() {
            let take = (1 + rng.next_below(60) as usize).min(alive.len());
            let mut chunk = Vec::with_capacity(take);
            for _ in 0..take {
                let i = rng.next_below(alive.len() as u64) as usize;
                chunk.push(alive.swap_remove(i));
            }
            batched.delete_batch(&chunk);
            for &id in &chunk {
                looped.delete(id);
            }
            assert_eq!(
                batched.group_all(),
                looped.group_all(),
                "{name}: clusterings diverged after deleting {} points",
                chunk.len()
            );
        }
        assert!(batched.is_empty());
    }
}

#[test]
fn random_interleavings_stay_identical_at_rho_zero() {
    // Mixed single-op and batched updates in random order: the batched
    // instance must track the looped instance exactly at rho = 0.
    let pool = seed_spreader::<2>(1_400, 43);
    for (name, mut batched) in engines(0.0) {
        let mut looped = engines(0.0)
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1;
        let deletions = batched.supports_deletion();
        let mut rng = SplitMix64::new(11 + name.len() as u64);
        let mut next = 0usize;
        let mut alive: Vec<PointId> = Vec::new();
        for round in 0..40 {
            let do_delete = deletions && !alive.is_empty() && rng.next_below(10) < 4;
            if do_delete {
                let take = (1 + rng.next_below(25) as usize).min(alive.len());
                let mut chunk = Vec::with_capacity(take);
                for _ in 0..take {
                    let i = rng.next_below(alive.len() as u64) as usize;
                    chunk.push(alive.swap_remove(i));
                }
                if chunk.len() == 1 {
                    batched.delete(chunk[0]);
                } else {
                    batched.delete_batch(&chunk);
                }
                for &id in &chunk {
                    looped.delete(id);
                }
            } else {
                let take = (1 + rng.next_below(90) as usize).min(pool.len() - next);
                if take == 0 {
                    break;
                }
                let chunk = &pool[next..next + take];
                next += take;
                let a = batched.insert_batch(chunk);
                let b: Vec<PointId> = chunk.iter().map(|p| looped.insert(*p)).collect();
                assert_eq!(a, b, "{name} round {round}");
                alive.extend(a);
            }
            assert_eq!(
                batched.group_all(),
                looped.group_all(),
                "{name} round {round}"
            );
        }
    }
}

#[test]
fn batched_updates_sandwich_at_positive_rho() {
    let pts = seed_spreader::<2>(700, 44);
    let rho = 0.25;
    let lo = Params::new(EPS, MIN_PTS);
    let hi = Params::new(EPS * (1.0 + rho), MIN_PTS);
    for (name, mut algo) in engines(rho) {
        let ids = algo.insert_batch(&pts);
        let c1 = relabel(&brute_force_exact(&pts, &lo), &ids);
        let c2 = relabel(&brute_force_exact(&pts, &hi), &ids);
        check_sandwich(&c1, &algo.group_all(), &c2)
            .unwrap_or_else(|e| panic!("{name} insert_batch: {e}"));
        if !algo.supports_deletion() {
            continue;
        }
        // delete a random third in batches; re-check the sandwich
        let mut rng = SplitMix64::new(5);
        let mut alive = ids;
        let mut removed = 0;
        while removed < pts.len() / 3 {
            let take = (1 + rng.next_below(40) as usize).min(alive.len());
            let mut chunk = Vec::with_capacity(take);
            for _ in 0..take {
                let i = rng.next_below(alive.len() as u64) as usize;
                chunk.push(alive.swap_remove(i));
            }
            removed += chunk.len();
            algo.delete_batch(&chunk);
        }
        let live_pts: Vec<Point<2>> = alive.iter().map(|&id| algo.coords(id)).collect();
        let c1 = relabel(&brute_force_exact(&live_pts, &lo), &alive);
        let c2 = relabel(&brute_force_exact(&live_pts, &hi), &alive);
        check_sandwich(&c1, &algo.group_all(), &c2)
            .unwrap_or_else(|e| panic!("{name} delete_batch: {e}"));
    }
}

#[test]
fn batch_counters_expose_amortization() {
    let pts = seed_spreader::<2>(600, 45);
    for (name, mut algo) in engines(0.0) {
        algo.insert_batch(&pts[..512]);
        algo.insert_batch(&pts[512..]);
        let s = algo.stats();
        assert_eq!(s.batch_flushes, 2, "{name}");
        assert_eq!(s.batched_updates, pts.len() as u64, "{name}");
        if name == "incdbscan" {
            // the baseline's grouped override saves index passes, not
            // cell materializations — it has no cells to scan
            assert_eq!(s.batch_cell_scans, 0, "{name}");
        } else {
            assert!(
                s.batch_cell_scans > 0,
                "{name}: batch flushes must report their cell scans"
            );
            // the whole point: far fewer cell materializations than points
            assert!(
                s.batch_cell_scans < s.batched_updates * 4,
                "{name}: amortization collapsed ({} scans for {} updates)",
                s.batch_cell_scans,
                s.batched_updates
            );
        }
        if algo.supports_deletion() {
            let ids = algo.alive_ids();
            algo.delete_batch(&ids[..256]);
            let s = algo.stats();
            assert_eq!(s.batch_flushes, 3, "{name}");
            assert_eq!(s.batched_updates, (pts.len() + 256) as u64, "{name}");
        }
    }
}

#[test]
fn single_element_batches_take_the_per_op_path() {
    // Degenerate batches must not inflate the batch counters (they
    // delegate to the per-op update).
    let mut algo = DbscanBuilder::new(EPS, MIN_PTS).build::<2>().unwrap();
    let a = algo.insert_batch(&[[1.0, 2.0]]);
    let empty: Vec<PointId> = algo.insert_batch(&[]);
    assert_eq!(a.len(), 1);
    assert!(empty.is_empty());
    algo.delete_batch(&a);
    let s = algo.stats();
    assert_eq!(s.batch_flushes, 0);
    assert_eq!(s.batched_updates, 0);
}
