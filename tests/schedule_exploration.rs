//! Tier-1 schedule-exploration suite (ISSUE 6): drives the
//! deterministic mini-shuttle in `dydbscan_core::sched` against the two
//! concurrency protocols the system's performance story rests on — the
//! `WorkerPool` claim/park/panic protocol and the `SnapshotState`
//! dirt-collect → refresh → `Arc`-publish protocol.
//!
//! Every replay *internally* asserts the protocol invariants (each task
//! index claimed exactly once, no result leaked on a task panic, check-in
//! never exceeds the cap, epochs strictly increasing, published
//! snapshots never written through); the tests here choose which
//! schedules to explore:
//!
//! * a 64-random-seed property sweep per protocol (seeds derived from a
//!   pinned master seed, so "random" is still reproducible),
//! * one pinned-seed regression test per invariant — a failure
//!   reproduces deterministically from the seed in the test name,
//! * an acceptance test exploring ≥ 1000 interleavings per protocol and
//!   checking they are genuinely distinct schedules (hash diversity)
//!   and deterministic (same seed ⇒ identical run).

use dydbscan_core::sched::{
    replay_handle_protocol, replay_pool_protocol, replay_shard_stitch_protocol,
    replay_snapshot_protocol, run_schedule, Actor, HandleScenario, PoolScenario,
    ShardStitchScenario, SnapScenario, Yielder,
};
use dydbscan_geom::SplitMix64;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// Master seed of the "random" sweeps — change deliberately, never
/// per-run (a failing derived seed must stay reproducible).
const MASTER_SEED: u64 = 0x15_5EED_2017_0006;

#[test]
fn property_pool_lifecycle_64_random_seeds() {
    let mut rng = SplitMix64::new(MASTER_SEED);
    for round in 0..64 {
        let seed = rng.next_u64();
        let workers = 1 + (rng.next_below(3) as usize); // 1..=3
        let tasks = 4 + (rng.next_below(13) as usize); // 4..=16
        let panic_task = match rng.next_below(4) {
            0 => Some(rng.next_below(tasks as u64) as usize),
            _ => None,
        };
        let sc = PoolScenario {
            seed,
            workers,
            tasks,
            panic_task,
        };
        let report = replay_pool_protocol(&sc);
        assert_eq!(
            report.panicked,
            panic_task.is_some(),
            "round {round}, seed {seed}: panic propagation mismatch"
        );
        if panic_task.is_none() {
            assert_eq!(
                report.executed, tasks,
                "round {round}, seed {seed}: every task must execute"
            );
        }
    }
}

#[test]
fn property_snapshot_refresh_under_readers_64_random_seeds() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0xA5A5_A5A5);
    for round in 0..64 {
        let seed = rng.next_u64();
        let sc = SnapScenario {
            seed,
            readers: 1 + (rng.next_below(3) as usize), // 1..=3
            rounds: 3 + (rng.next_below(6) as usize),  // 3..=8
            keys: 4 + (rng.next_below(8) as u32),      // 4..=11
        };
        let report = replay_snapshot_protocol(&sc);
        assert!(
            report.final_epoch >= 1,
            "round {round}, seed {seed}: the writer must refresh at least once"
        );
        assert_eq!(
            report.refreshes, report.final_epoch,
            "round {round}, seed {seed}: refresh count must equal the final epoch"
        );
    }
}

/// ISSUE 9 satellite (e): `EpochHandle` readers under a flushing writer.
/// The replay internally asserts per-reader epoch monotonicity, that a
/// loaded snapshot's checksum agrees with every other observation of
/// the same epoch (a torn load could not agree), and that `changed_since`
/// answers span-consistent feeds — here we sweep 64 derived seeds.
#[test]
fn property_epoch_handle_readers_64_random_seeds() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x4A17_D1E5);
    for round in 0..64 {
        let seed = rng.next_u64();
        let sc = HandleScenario {
            seed,
            readers: 1 + (rng.next_below(3) as usize), // 1..=3
            rounds: 3 + (rng.next_below(6) as usize),  // 3..=8
            keys: 4 + (rng.next_below(8) as u32),      // 4..=11
        };
        let report = replay_handle_protocol(&sc);
        assert!(
            report.final_epoch >= 1,
            "round {round}, seed {seed}: the writer must publish at least once"
        );
        assert!(
            report.loads >= 1,
            "round {round}, seed {seed}: readers must load through the handle"
        );
    }
}

/// ISSUE 10 satellite: the sharded-ingest stitch protocol (concurrent
/// per-shard edge-tap production, flush barrier, ascending-shard
/// refcounted application into the global CC structure) swept over 64
/// derived schedule seeds. Each replay internally asserts refcounts
/// never exceed a pair's observer multiplicity and that the stitched
/// components equal a serial reference after every round; here we
/// additionally assert the label-trace fingerprint is *identical*
/// across every schedule of the same workload — the wrapper's
/// bit-identical-at-every-thread-count claim, at the protocol level.
#[test]
fn property_shard_stitch_64_random_seeds() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x5742_D010);
    for workload in 0..8 {
        let script_seed = rng.next_u64();
        let shards = 2 + (rng.next_below(3) as usize); // 2..=4
        let rounds = 2 + (rng.next_below(3) as usize); // 2..=4
        let events_per_round = 6 + (rng.next_below(11) as usize); // 6..=16
        let verts = 6 + (rng.next_below(7) as u32); // 6..=12
        let mut traces = BTreeSet::new();
        let mut schedules = BTreeSet::new();
        for _ in 0..8 {
            let sc = ShardStitchScenario {
                seed: rng.next_u64(),
                script_seed,
                shards,
                rounds,
                events_per_round,
                verts,
            };
            let report = replay_shard_stitch_protocol(&sc);
            traces.insert(report.label_trace);
            schedules.insert(report.schedule_hash);
            assert!(
                report.stitch_ops >= 1,
                "workload {workload}: the script must drive the stitch"
            );
        }
        assert_eq!(
            traces.len(),
            1,
            "workload {workload}: stitched components depend on the schedule"
        );
        assert!(
            schedules.len() > 1,
            "workload {workload}: the sweep explored only one schedule"
        );
    }
}

// ---------------------------------------------------------------------
// Pinned-seed regressions: one per invariant, so a violation found by
// any sweep can be frozen here and reproduces forever.
// ---------------------------------------------------------------------

/// Invariant: every task index is claimed exactly once, whatever the
/// interleaving (the atomic-cursor hand-out protocol).
#[test]
fn pinned_seed_pool_claims_each_task_exactly_once() {
    let report = replay_pool_protocol(&PoolScenario {
        seed: 0xC1A1_0001,
        workers: 3,
        tasks: 16,
        panic_task: None,
    });
    assert_eq!(report.claims, vec![1; 16]);
    assert_eq!(report.executed, 16);
    assert!(!report.panicked);
}

/// Invariant: the crew check-in never exceeds the job's worker cap
/// (late wakers must not join a drained job).
#[test]
fn pinned_seed_pool_checkin_respects_cap() {
    let report = replay_pool_protocol(&PoolScenario {
        seed: 0xC1A1_0002,
        workers: 2,
        tasks: 12,
        panic_task: None,
    });
    assert!(report.checked_in_peak <= 2);
}

/// Invariant: a task panic propagates to the coordinator AND results
/// already written into claimed slots are dropped, not leaked (the
/// ISSUE 6 satellite bug — drop-balance is asserted inside the replay).
#[test]
fn pinned_seed_pool_panic_propagates_without_leaking_slots() {
    let report = replay_pool_protocol(&PoolScenario {
        seed: 0xC1A1_0003,
        workers: 3,
        tasks: 12,
        panic_task: Some(7),
    });
    assert!(report.panicked, "the injected panic must reach the caller");
    assert!(
        report.executed < 12,
        "poisoning must stop handing out work after the panic"
    );
}

/// Invariant: snapshot epochs increase strictly under refresh and stay
/// put under clean reads (asserted by the writer and readers in the
/// replay; the report cross-checks refreshes == final epoch).
#[test]
fn pinned_seed_snapshot_epochs_strictly_increase() {
    let report = replay_snapshot_protocol(&SnapScenario {
        seed: 0x5A4A_0001,
        readers: 2,
        rounds: 8,
        keys: 8,
    });
    assert_eq!(report.final_epoch, report.refreshes);
    assert!(report.final_epoch >= 8, "every writer round must refresh");
}

/// Invariant: a published `Arc<ClusterSnapshot>` is never written
/// through — every reader re-verifies the checksum of every snapshot it
/// ever held after later refreshes (asserted inside the replay).
#[test]
fn pinned_seed_snapshot_published_arcs_are_frozen() {
    let report = replay_snapshot_protocol(&SnapScenario {
        seed: 0x5A4A_0002,
        readers: 3,
        rounds: 6,
        keys: 6,
    });
    assert!(report.acquisitions >= report.refreshes);
}

/// Invariant: a handle reader never observes a decreasing epoch and
/// never observes a torn snapshot (its checksum must agree with the
/// shared epoch→checksum record), even while the writer is mid-flush.
/// Asserted inside the replay; this pins one witness schedule.
#[test]
fn pinned_seed_handle_readers_never_see_torn_or_decreasing_epochs() {
    let report = replay_handle_protocol(&HandleScenario {
        seed: 0x4A17_0001,
        readers: 3,
        rounds: 8,
        keys: 8,
    });
    assert!(report.final_epoch >= 8, "every writer round must publish");
    assert!(report.loads > 0);
}

/// Invariant: a cross-slab edge observed by both endpoint owners is
/// forwarded to the CC structure exactly once (per-pair refcount 0→1),
/// and a delete only reaches it when the last observer retracts —
/// whatever order the two shards' taps drain in. Asserted inside the
/// replay; this pins one witness schedule.
#[test]
fn pinned_seed_stitch_refcounts_cross_slab_edges() {
    let report = replay_shard_stitch_protocol(&ShardStitchScenario {
        seed: 0x57C4_0001,
        script_seed: 2017,
        shards: 3,
        rounds: 4,
        events_per_round: 12,
        verts: 9,
    });
    assert!(report.stitch_ops >= 1);
    // Re-running the same scenario must reproduce the run exactly.
    let again = replay_shard_stitch_protocol(&ShardStitchScenario {
        seed: 0x57C4_0001,
        script_seed: 2017,
        shards: 3,
        rounds: 4,
        events_per_round: 12,
        verts: 9,
    });
    assert_eq!(report, again);
}

/// Invariant: `changed_since` through the handle answers either a delta
/// starting exactly at the asked-for epoch or an honest reset whose
/// window excludes it — never a gapped span (asserted in the replay).
#[test]
fn pinned_seed_handle_change_feed_spans_are_gapless() {
    let report = replay_handle_protocol(&HandleScenario {
        seed: 0x4A17_0002,
        readers: 2,
        rounds: 6,
        keys: 11,
    });
    assert!(report.final_epoch >= 6);
}

// ---------------------------------------------------------------------
// Lock-order regression (ISSUE 8): the snapshot-refresh vs. pool-mutex
// interleaving, replayed at the levels `xtask/lock_registry.toml`
// assigns, must never acquire the two locks in inverted order under any
// explored schedule.
// ---------------------------------------------------------------------

/// The checked-in registry, compiled into the test so the replayed
/// levels can never drift from what the linter enforces.
const LOCK_REGISTRY: &str = include_str!("../xtask/lock_registry.toml");

/// Extracts `field`'s level from the registry TOML (same tiny subset the
/// linter parses: `[[lock]]` blocks of `key = value` lines).
fn registry_level(field: &str) -> i64 {
    let mut matched = false;
    for line in LOCK_REGISTRY.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with("[[") {
            matched = false;
        } else if let Some((k, v)) = line.split_once('=') {
            let (k, v) = (k.trim(), v.trim().trim_matches('"'));
            if k == "field" {
                matched = v == field;
            } else if k == "level" && matched {
                return v.parse().expect("registry level parses");
            }
        }
    }
    panic!("lock_registry.toml has no entry for `{field}`");
}

/// A replayed lock at a registry level: actors try-acquire (yielding
/// between attempts, so a holder is never parked by the turnstile) and
/// assert on every acquisition that each level already held is strictly
/// greater — the registry's descent discipline, checked dynamically
/// under every explored schedule.
struct LevelLock {
    level: i64,
    name: &'static str,
    busy: AtomicBool,
}

impl LevelLock {
    fn new(name: &'static str, level: i64) -> Self {
        Self {
            level,
            name,
            busy: AtomicBool::new(false),
        }
    }

    fn acquire(&self, y: &Yielder<'_>, held: &mut Vec<(i64, &'static str)>) {
        for &(lvl, name) in held.iter() {
            assert!(
                lvl > self.level,
                "acquiring `{}` (level {}) while holding `{name}` (level {lvl}): \
                 nested acquisitions must descend strictly",
                self.name,
                self.level
            );
        }
        // ORDERING: Relaxed — the turnstile serializes actor execution;
        // the atomic only models occupancy, it synchronizes nothing.
        while self.busy.swap(true, Ordering::Relaxed) {
            y.point(); // never spin while scheduled: hand the CPU over
        }
        held.push((self.level, self.name));
        y.point();
    }

    fn release(&self, held: &mut Vec<(i64, &'static str)>) {
        let top = held.pop().expect("release without acquire");
        assert_eq!(top.1, self.name, "locks must release in LIFO order");
        // ORDERING: Relaxed — same as acquire: occupancy model only.
        self.busy.store(false, Ordering::Relaxed);
    }
}

#[test]
fn registry_levels_keep_snapshot_refresh_above_pool_fanout() {
    let inner_level = registry_level("SnapshotState.inner");
    let pool_level = registry_level("FlushPipeline.pool");
    assert!(
        inner_level > pool_level,
        "the registry must order the snapshot drain (inner, {inner_level}) \
         above the pool fan-out (pool, {pool_level})"
    );

    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x10C8);
    for round in 0..64 {
        let seed = rng.next_u64();
        let inner = LevelLock::new("SnapshotState.inner", inner_level);
        let pool = LevelLock::new("FlushPipeline.pool", pool_level);
        // The narrowed read_with_pool protocol: drain under `inner`
        // alone, fan out under `pool` alone, publish under `inner`
        // alone — plus two concurrent group_all readers on the pool.
        let mut actors: Vec<Actor<'_>> = vec![Box::new(|y| {
            let mut held = Vec::new();
            for _ in 0..3 {
                inner.acquire(y, &mut held); // drain the dirt
                inner.release(&mut held);
                pool.acquire(y, &mut held); // fan out, inner released
                pool.release(&mut held);
                inner.acquire(y, &mut held); // publish the new epoch
                inner.release(&mut held);
            }
        })];
        for _ in 0..2 {
            actors.push(Box::new(|y| {
                let mut held = Vec::new();
                for _ in 0..3 {
                    pool.acquire(y, &mut held);
                    pool.release(&mut held);
                }
            }));
        }
        let outcome = run_schedule(seed, actors);
        assert!(
            outcome.panics.is_empty(),
            "round {round}, seed {seed}: lock-order violation under an \
             explored schedule: {:?}",
            outcome.panics
        );
    }
}

/// Negative control: an actor that *does* invert the order (acquiring
/// the snapshot lock while holding the pool lock) must be caught by the
/// level assertion under every schedule — proving the regression test
/// can actually fail.
#[test]
fn inverted_acquisition_is_caught_by_the_level_model() {
    let inner = LevelLock::new("SnapshotState.inner", registry_level("SnapshotState.inner"));
    let pool = LevelLock::new("FlushPipeline.pool", registry_level("FlushPipeline.pool"));
    let inverted: Actor<'_> = Box::new(|y| {
        let mut held = Vec::new();
        pool.acquire(y, &mut held);
        inner.acquire(y, &mut held); // climbs 15 -> 25: must panic
        inner.release(&mut held);
        pool.release(&mut held);
    });
    let outcome = run_schedule(MASTER_SEED, vec![inverted]);
    assert!(
        !outcome.panics.is_empty(),
        "the level model failed to catch an inverted acquisition"
    );
}

// ---------------------------------------------------------------------
// Acceptance: ≥ 1000 interleavings per protocol, deterministic and
// genuinely distinct.
// ---------------------------------------------------------------------

#[test]
fn pool_protocol_explores_1000_distinct_interleavings() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x1000);
    let mut hashes = BTreeSet::new();
    for _ in 0..1000 {
        let seed = rng.next_u64();
        let report = replay_pool_protocol(&PoolScenario {
            seed,
            workers: 2,
            tasks: 8,
            panic_task: None,
        });
        hashes.insert(report.schedule_hash);
    }
    assert!(
        hashes.len() >= 950,
        "1000 seeds explored only {} distinct pool schedules",
        hashes.len()
    );
    // Determinism: replaying the first seed reproduces its run exactly.
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x1000);
    let seed = rng.next_u64();
    let sc = PoolScenario {
        seed,
        workers: 2,
        tasks: 8,
        panic_task: None,
    };
    assert_eq!(replay_pool_protocol(&sc), replay_pool_protocol(&sc));
}

#[test]
fn snapshot_protocol_explores_1000_distinct_interleavings() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x2000);
    let mut hashes = BTreeSet::new();
    for _ in 0..1000 {
        let seed = rng.next_u64();
        let report = replay_snapshot_protocol(&SnapScenario {
            seed,
            readers: 2,
            rounds: 4,
            keys: 6,
        });
        hashes.insert(report.schedule_hash);
    }
    assert!(
        hashes.len() >= 950,
        "1000 seeds explored only {} distinct snapshot schedules",
        hashes.len()
    );
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x2000);
    let seed = rng.next_u64();
    let sc = SnapScenario {
        seed,
        readers: 2,
        rounds: 4,
        keys: 6,
    };
    assert_eq!(replay_snapshot_protocol(&sc), replay_snapshot_protocol(&sc));
}

#[test]
fn handle_protocol_explores_1000_distinct_interleavings() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x3000);
    let mut hashes = BTreeSet::new();
    for _ in 0..1000 {
        let seed = rng.next_u64();
        let report = replay_handle_protocol(&HandleScenario {
            seed,
            readers: 2,
            rounds: 4,
            keys: 6,
        });
        hashes.insert(report.schedule_hash);
    }
    assert!(
        hashes.len() >= 950,
        "1000 seeds explored only {} distinct handle schedules",
        hashes.len()
    );
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0x3000);
    let seed = rng.next_u64();
    let sc = HandleScenario {
        seed,
        readers: 2,
        rounds: 4,
        keys: 6,
    };
    assert_eq!(replay_handle_protocol(&sc), replay_handle_protocol(&sc));
}
