//! Parallel-vs-sequential equivalence: the batch flush's **persistent**
//! worker pool must be invisible in the results, not just statistically
//! but **bit-identically** — the flush enumerates touched cells in
//! cell-id order and merges worker results back in task order, so every
//! thread count resolves every don't-care point the same way. Checked
//! through `Box<dyn DynamicClusterer>` for all three engines (the
//! baseline pools its per-point range queries; the grid engines pool
//! placement, per-cell scans and the read-only half of the GUM rounds),
//! at `rho = 0` *and* at an aggressive `rho`, after every flush, for
//! clusterings and per-point core statuses alike.

use dydbscan::geom::{Point, SplitMix64};
use dydbscan::{seed_spreader, Algorithm, DbscanBuilder, DynamicClusterer, PointId};

const EPS: f64 = 200.0; // PaperGrid::default_eps(2)
const MIN_PTS: usize = 10;

fn build(algo: Algorithm, rho: f64, threads: usize) -> Box<dyn DynamicClusterer<2>> {
    DbscanBuilder::new(EPS, MIN_PTS)
        .rho(rho)
        .algorithm(algo)
        .threads(threads)
        .build::<2>()
        .unwrap()
}

/// Drives identical batched workloads through a sequential (threads = 1)
/// and a parallel instance, asserting equality after every flush.
fn assert_bit_identical(algo: Algorithm, rho: f64, threads: usize, seed: u64) {
    let pool = seed_spreader::<2>(1_200, seed);
    let mut seq = build(algo, rho, 1);
    let mut par = build(algo, rho, threads);
    let deletions = seq.supports_deletion();
    let mut rng = SplitMix64::new(seed ^ 0xD1CE);
    let mut next = 0usize;
    let mut alive: Vec<PointId> = Vec::new();
    for round in 0..28 {
        let label = format!("{algo:?} rho={rho} threads={threads} round={round}");
        if deletions && alive.len() > 80 && rng.next_below(10) < 4 {
            let take = (1 + rng.next_below(120) as usize).min(alive.len());
            let mut chunk = Vec::with_capacity(take);
            for _ in 0..take {
                let i = rng.next_below(alive.len() as u64) as usize;
                chunk.push(alive.swap_remove(i));
            }
            seq.delete_batch(&chunk);
            par.delete_batch(&chunk);
        } else {
            let take = (1 + rng.next_below(160) as usize).min(pool.len() - next);
            if take == 0 {
                break;
            }
            let chunk: &[Point<2>] = &pool[next..next + take];
            next += take;
            let a = seq.insert_batch(chunk);
            let b = par.insert_batch(chunk);
            assert_eq!(a, b, "{label}: id sequences must align");
            alive.extend(a);
        }
        // Bit-identical clustering, not merely sandwich-compatible:
        // parallelism must not change a single don't-care resolution.
        assert_eq!(seq.group_all(), par.group_all(), "{label}");
        for &id in &alive {
            assert_eq!(seq.is_core(id), par.is_core(id), "{label}: core of {id}");
        }
    }
    assert!(next > 0, "workload must have run");
}

#[test]
fn parallel_flush_is_bit_identical_across_thread_counts() {
    for algo in [
        Algorithm::SemiDynamic,
        Algorithm::FullyDynamic,
        Algorithm::IncDbscan,
    ] {
        for threads in [2usize, 8] {
            let rhos: &[f64] = if algo == Algorithm::IncDbscan {
                &[0.0] // the baseline is exact-only
            } else {
                &[0.0, 0.25]
            };
            for &rho in rhos {
                assert_bit_identical(algo, rho, threads, 97 + threads as u64);
            }
        }
    }
}

#[test]
fn parallel_flush_reports_engagement_in_stats() {
    // Big flushes on many cells must actually engage the pool — and the
    // sequential configuration must never report parallel work.
    let pts = seed_spreader::<2>(6_000, 5);
    for algo in [
        Algorithm::SemiDynamic,
        Algorithm::FullyDynamic,
        Algorithm::IncDbscan,
    ] {
        let mut par = build(algo, 0.0, 4);
        par.insert_batch(&pts);
        let s = par.stats();
        assert!(
            s.parallel_workers > 0,
            "{algo:?}: a 6k-point flush must engage workers"
        );
        assert!(
            s.parallel_cell_tasks >= s.parallel_workers,
            "{algo:?}: every engaged worker had at least one task"
        );

        let mut seq = build(algo, 0.0, 1);
        seq.insert_batch(&pts);
        let s = seq.stats();
        assert_eq!(s.parallel_workers, 0, "{algo:?}: threads(1) stays inline");
        assert_eq!(s.parallel_cell_tasks, 0, "{algo:?}");
    }
}
