//! Non-finite input hardening: NaN/±∞ rows must be rejected at the
//! public API boundary with a typed `ParamError::InvalidPoint` — never
//! an abort deep inside index maintenance (the seed unwrapped
//! `partial_cmp` on R-tree node splits, so a single NaN coordinate
//! could kill the process) and never silent corruption (NaN has no grid
//! cell; `floor() as i64` would quietly alias it into cell 0).
//!
//! Checked at trait level (`try_insert` / `try_insert_batch` through
//! `Box<dyn DynamicClusterer>` on every engine) and at the
//! runtime-dimension facade. The panicking `insert` path must also fail
//! *loudly at the boundary*, with a message naming the axis.

use dydbscan::{Algorithm, DbscanBuilder, DynamicClusterer, ParamError};

fn engines() -> Vec<(&'static str, Box<dyn DynamicClusterer<2>>)> {
    [
        Algorithm::SemiDynamic,
        Algorithm::FullyDynamic,
        Algorithm::IncDbscan,
    ]
    .into_iter()
    .map(|a| {
        (
            a.name(),
            DbscanBuilder::new(1.0, 3)
                .algorithm(a)
                .build::<2>()
                .unwrap(),
        )
    })
    .collect()
}

#[test]
fn try_insert_rejects_non_finite_rows_on_every_engine() {
    for (name, mut c) in engines() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                c.try_insert([bad, 0.0]),
                Err(ParamError::InvalidPoint { id: 0, axis: 0 }),
                "{name}"
            );
            assert_eq!(
                c.try_insert([0.0, bad]),
                Err(ParamError::InvalidPoint { id: 0, axis: 1 }),
                "{name}"
            );
        }
        assert_eq!(c.len(), 0, "{name}: rejected rows must not be inserted");
        // the engine stays fully usable after rejections
        let a = c.try_insert([0.0, 0.0]).unwrap();
        let b = c.try_insert([0.5, 0.0]).unwrap();
        let d = c.try_insert([0.0, 0.5]).unwrap();
        assert!(c.group_by(&[a, b, d]).same_cluster(a, b), "{name}");
    }
}

#[test]
fn try_insert_batch_names_the_offending_row_and_axis() {
    for (name, mut c) in engines() {
        let rows = [[0.0, 0.0], [1.0, 1.0], [2.0, f64::NAN], [3.0, 3.0]];
        assert_eq!(
            c.try_insert_batch(&rows),
            Err(ParamError::InvalidPoint { id: 2, axis: 1 }),
            "{name}"
        );
        assert_eq!(c.len(), 0, "{name}: the whole batch must be rejected");
        let ids = c.try_insert_batch(&rows[..2]).unwrap();
        assert_eq!(ids.len(), 2, "{name}");
        assert_eq!(c.len(), 2, "{name}");
    }
}

#[test]
fn facade_rejects_non_finite_rows() {
    let mut c = DbscanBuilder::new(1.0, 3).build_dyn(3).unwrap();
    assert_eq!(
        c.try_insert(&[0.0, f64::NAN, 0.0]),
        Err(ParamError::InvalidPoint { id: 0, axis: 1 })
    );
    // flat-buffer batch: row/axis recovered from the flat offset
    let rows = [0.0, 0.0, 0.0, 1.0, 1.0, f64::INFINITY, 2.0, 2.0, 2.0];
    assert_eq!(
        c.try_insert_batch(&rows),
        Err(ParamError::InvalidPoint { id: 1, axis: 2 })
    );
    assert!(c.is_empty(), "rejected rows must not be inserted");
    let ids = c.try_insert_batch(&rows[..3]).unwrap();
    assert_eq!(ids.len(), 1);
    // the error formats with row and axis for service logs
    let msg = ParamError::InvalidPoint { id: 1, axis: 2 }.to_string();
    assert!(msg.contains("point 1") && msg.contains("axis 2"), "{msg}");
}

#[test]
#[should_panic(expected = "non-finite coordinate on axis 1")]
fn plain_insert_panics_at_the_boundary_not_in_the_index() {
    let mut c = DbscanBuilder::new(1.0, 3)
        .algorithm(Algorithm::IncDbscan)
        .build::<2>()
        .unwrap();
    // seed enough points that an R-tree node split would be reachable
    for i in 0..10 {
        c.insert([i as f64, 0.0]);
    }
    c.insert([0.0, f64::NAN]);
}

#[test]
#[should_panic(expected = "non-finite coordinate on axis 0")]
fn batch_pipelines_validate_before_placement() {
    let mut c = DbscanBuilder::new(1.0, 3).build::<2>().unwrap();
    c.insert_batch(&[[0.0, 0.0], [f64::NEG_INFINITY, 1.0], [2.0, 2.0]]);
}
