//! Property-based tests (proptest) over the system's contracts:
//!
//! * the sandwich guarantee (Theorem 3) for arbitrary point sets,
//!   parameters and update orders;
//! * exactness of every variant at `rho = 0`;
//! * C-group-by consistency: any sub-query must equal the restriction of
//!   the full clustering (the problem definition's "same C(P)" rule);
//! * internal invariant audits of the fully-dynamic structure after
//!   arbitrary interleavings of insertions and deletions.

use dydbscan::core::full::FullDynDbscan;
use dydbscan::{
    brute_force_exact, check_sandwich, relabel, Params, PointId, SemiDynDbscan,
};
use proptest::prelude::*;

/// Small coordinates so clusters actually form at eps = 1.
fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<[f64; 2]>> {
    prop::collection::vec(
        (0u32..60, 0u32..60).prop_map(|(x, y)| [x as f64 * 0.25, y as f64 * 0.25]),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn semi_exact_matches_bruteforce(pts in arb_points(120), min_pts in 1usize..6) {
        let params = Params::new(1.0, min_pts);
        let mut semi = SemiDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| semi.insert(*p)).collect();
        let got = semi.group_all();
        let want = relabel(&brute_force_exact(&pts, &params), &ids);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn full_exact_matches_bruteforce_with_deletions(
        pts in arb_points(90),
        deletions in prop::collection::vec(0usize..90, 0..40),
        min_pts in 1usize..6,
    ) {
        let params = Params::new(1.0, min_pts);
        let mut algo = FullDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| algo.insert(*p)).collect();
        let mut alive: Vec<bool> = vec![true; pts.len()];
        for d in deletions {
            let k = d % pts.len();
            if alive[k] {
                algo.delete(ids[k]);
                alive[k] = false;
            }
        }
        let live_pts: Vec<[f64; 2]> =
            pts.iter().zip(&alive).filter(|(_, &a)| a).map(|(p, _)| *p).collect();
        let live_ids: Vec<PointId> =
            ids.iter().zip(&alive).filter(|(_, &a)| a).map(|(i, _)| *i).collect();
        let got = algo.group_all();
        let want = relabel(&brute_force_exact(&live_pts, &params), &live_ids);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sandwich_guarantee_under_churn(
        pts in arb_points(80),
        deletions in prop::collection::vec(0usize..80, 0..30),
        rho_pct in 1u32..40,
    ) {
        let rho = rho_pct as f64 / 100.0;
        let params = Params::new(1.0, 3).with_rho(rho);
        let mut algo = FullDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| algo.insert(*p)).collect();
        let mut alive: Vec<bool> = vec![true; pts.len()];
        for d in deletions {
            let k = d % pts.len();
            if alive[k] {
                algo.delete(ids[k]);
                alive[k] = false;
            }
        }
        let live_pts: Vec<[f64; 2]> =
            pts.iter().zip(&alive).filter(|(_, &a)| a).map(|(p, _)| *p).collect();
        let live_ids: Vec<PointId> =
            ids.iter().zip(&alive).filter(|(_, &a)| a).map(|(i, _)| *i).collect();
        let got = algo.group_all();
        let c1 = relabel(&brute_force_exact(&live_pts, &Params::new(1.0, 3)), &live_ids);
        let c2 = relabel(
            &brute_force_exact(&live_pts, &Params::new(1.0 + rho, 3)),
            &live_ids,
        );
        prop_assert!(check_sandwich(&c1, &got, &c2).is_ok());
        algo.validate_invariants();
    }

    #[test]
    fn group_by_equals_restriction_of_group_all(
        pts in arb_points(70),
        subset_mask in prop::collection::vec(any::<bool>(), 70),
        rho_pct in 0u32..30,
    ) {
        let params = Params::new(1.0, 3).with_rho(rho_pct as f64 / 100.0);
        let mut algo = FullDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| algo.insert(*p)).collect();
        let q: Vec<PointId> = ids
            .iter()
            .zip(subset_mask.iter().chain(std::iter::repeat(&false)))
            .filter(|(_, &m)| m)
            .map(|(i, _)| *i)
            .collect();
        let all = algo.group_all();
        let sub = algo.group_by(&q);
        prop_assert_eq!(sub, all.restrict(&q));
    }

    #[test]
    fn insertion_order_is_irrelevant_at_rho_zero(
        pts in arb_points(80),
        seed in any::<u64>(),
    ) {
        let params = Params::new(1.0, 3);
        let mut a = SemiDynDbscan::<2>::new(params);
        let ids_a: Vec<PointId> = pts.iter().map(|p| a.insert(*p)).collect();
        // shuffled order
        let mut order: Vec<usize> = (0..pts.len()).collect();
        let mut rng = dydbscan::geom::SplitMix64::new(seed);
        rng.shuffle(&mut order);
        let mut b = SemiDynDbscan::<2>::new(params);
        let mut ids_b = vec![0 as PointId; pts.len()];
        for &k in &order {
            ids_b[k] = b.insert(pts[k]);
        }
        // map both to the original indices and compare
        let ga = a.group_all();
        let gb = b.group_all();
        let inv_a: std::collections::HashMap<PointId, u32> =
            ids_a.iter().enumerate().map(|(k, &i)| (i, k as u32)).collect();
        let inv_b: std::collections::HashMap<PointId, u32> =
            ids_b.iter().enumerate().map(|(k, &i)| (i, k as u32)).collect();
        let norm = |g: &dydbscan::GroupBy, inv: &std::collections::HashMap<PointId, u32>| {
            let mut out = dydbscan::GroupBy {
                groups: g
                    .groups
                    .iter()
                    .map(|grp| grp.iter().map(|p| inv[p]).collect())
                    .collect(),
                noise: g.noise.iter().map(|p| inv[p]).collect(),
            };
            out.normalize();
            out
        };
        prop_assert_eq!(norm(&ga, &inv_a), norm(&gb, &inv_b));
    }
}
