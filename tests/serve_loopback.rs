//! Tier-1 loopback differential suite for `dydbscan-serve` (ISSUE 9):
//! every answer the server gives over the wire must equal what a local
//! replica computes from the same mutation history.
//!
//! * `concurrent_clients_group_by_matches_sequential_replay` — K client
//!   threads (K from `DYDBSCAN_SERVE_THREADS`, default 4) race
//!   insert-only batches and immediately `group_by` their own acked
//!   ids. Afterwards the acked batches, sorted by ack epoch, replay
//!   into a local `FullDynDbscan<2>`; assigned ids, epochs, and every
//!   wire `group_by` answer must match the replica's snapshot at the
//!   exact epoch that answered.
//! * `change_feed_composes_and_matches_local_between` — per-step wire
//!   `changed_since` deltas over E→E'→E'' must compose (via
//!   `SnapshotDelta::compose`) into the direct wire diff E→E'', and
//!   both must equal `SnapshotDelta::between` on the replica's
//!   snapshots at E and E''.
//! * `malformed_bytes_get_error_responses_never_panics` — hostile
//!   frames (unknown opcode, truncated body, hostile counts, absurd
//!   length prefix) draw error responses or a closed connection, never
//!   a server panic; the server keeps serving and shuts down cleanly.

use dydbscan_core::{
    DynamicClusterer, FullDynDbscan, GroupBy, Params, PointId, ShardedDbscan, SnapshotDelta,
};
use dydbscan_geom::SplitMix64;
use dydbscan_serve::{Client, Server, ServerConfig, WireFeed};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Client-thread count: the CI test-threads matrix sets this to
/// {1, 2, 4}; locally it defaults to 4.
fn client_threads() -> usize {
    std::env::var("DYDBSCAN_SERVE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// A replica engine configured exactly like `ServerConfig::default()` —
/// including the shard count (`DYDBSCAN_SERVE_SHARDS`), so a sharded
/// server is diffed against an equally-sharded replica and every wire
/// answer, raw snapshot label included, must match bit for bit.
fn replica(cfg: &ServerConfig) -> Box<dyn DynamicClusterer<2>> {
    let params = Params::new(cfg.eps, cfg.min_pts).with_rho(cfg.rho);
    if cfg.shards > 1 {
        Box::new(ShardedDbscan::<2, FullDynDbscan<2>>::new_with(
            params,
            cfg.shards,
            |p| FullDynDbscan::new(*p).with_threads(1),
        ))
    } else {
        Box::new(FullDynDbscan::<2>::new(params))
    }
}

/// Uniform rows in a box sized for real cluster structure at eps = 1.
fn gen_rows(rng: &mut SplitMix64, n: usize, side: f64) -> Vec<[f64; 2]> {
    (0..n)
        .map(|_| [rng.next_f64() * side, rng.next_f64() * side])
        .collect()
}

/// Order-insensitive normal form of a grouping: each group sorted, the
/// groups sorted, the noise sorted.
fn norm(groups: &[Vec<PointId>], noise: &[PointId]) -> (Vec<Vec<PointId>>, Vec<PointId>) {
    let mut gs: Vec<Vec<PointId>> = groups
        .iter()
        .map(|g| {
            let mut g = g.clone();
            g.sort_unstable();
            g
        })
        .collect();
    gs.sort();
    let mut ns = noise.to_vec();
    ns.sort_unstable();
    (gs, ns)
}

/// One acked mutation plus the wire answer it was immediately queried
/// with, recorded by a racing client thread.
struct AckedBatch {
    ack_epoch: u64,
    rows: Vec<[f64; 2]>,
    ids: Vec<PointId>,
    query: Vec<PointId>,
    answer_epoch: u64,
    answer: (Vec<Vec<PointId>>, Vec<PointId>),
}

#[test]
fn concurrent_clients_group_by_matches_sequential_replay() {
    const BATCHES_PER_CLIENT: usize = 6;
    const BATCH: usize = 32;
    let clients = client_threads();
    let cfg = ServerConfig::default();
    let server = Server::start(cfg.clone()).unwrap();
    let addr = server.addr();
    let side = ((clients * BATCHES_PER_CLIENT * BATCH) as f64).sqrt() / 2.0;

    let mut records: Vec<AckedBatch> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|ci| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut rng = SplitMix64::new(0x5E41 + ci as u64);
                    let mut out = Vec::with_capacity(BATCHES_PER_CLIENT);
                    let mut mine: Vec<PointId> = Vec::new();
                    for _ in 0..BATCHES_PER_CLIENT {
                        let rows = gen_rows(&mut rng, BATCH, side);
                        let (ack_epoch, ids) = client.insert(&rows).unwrap();
                        mine.extend_from_slice(&ids);
                        // Query a random slice of this client's own acked
                        // ids: read-your-writes guarantees they exist at
                        // whatever epoch answers.
                        let query: Vec<PointId> = (0..BATCH)
                            .map(|_| mine[rng.next_below(mine.len() as u64) as usize])
                            .collect();
                        let g = client.group_by(&query).unwrap();
                        assert!(
                            g.epoch >= ack_epoch,
                            "read-your-writes: answered at {} before ack {ack_epoch}",
                            g.epoch
                        );
                        out.push(AckedBatch {
                            ack_epoch,
                            rows,
                            ids,
                            query,
                            answer_epoch: g.epoch,
                            answer: norm(&g.groups, &g.noise),
                        });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let mut driver = Client::connect(addr).unwrap();
    driver.shutdown().unwrap();
    drop(driver);
    let stats = server.join().unwrap();
    assert!(stats.epochs_monotone, "server saw a non-monotone publish");

    // Sequential replay: the single ingest thread serialized the
    // batches; their ack epochs are exactly the apply order.
    records.sort_by_key(|r| r.ack_epoch);
    let total = clients * BATCHES_PER_CLIENT;
    assert_eq!(records.len(), total);
    assert!(
        records.windows(2).all(|w| w[0].ack_epoch < w[1].ack_epoch),
        "ack epochs must be distinct: one publish per applied batch"
    );

    let mut engine = replica(&cfg);
    let mut snaps: BTreeMap<u64, Arc<dydbscan_core::ClusterSnapshot>> = BTreeMap::new();
    snaps.insert(engine.snapshot().epoch(), engine.snapshot());
    for r in &records {
        let ids = engine.insert_batch(&r.rows);
        assert_eq!(
            ids, r.ids,
            "replayed id assignment diverged at epoch {}",
            r.ack_epoch
        );
        let snap = engine.snapshot();
        assert_eq!(
            snap.epoch(),
            r.ack_epoch,
            "one batch must publish exactly one epoch"
        );
        snaps.insert(snap.epoch(), snap);
    }

    for r in &records {
        let snap = snaps
            .get(&r.answer_epoch)
            .unwrap_or_else(|| panic!("answered at unknown epoch {}", r.answer_epoch));
        let local: GroupBy = snap.group_by(&r.query);
        assert_eq!(
            r.answer,
            norm(&local.groups, &local.noise),
            "wire group_by at epoch {} diverged from the replica",
            r.answer_epoch
        );
    }
}

/// Converts a wire delta feed into the core type so it can compose.
fn as_delta(feed: WireFeed) -> SnapshotDelta {
    match feed {
        WireFeed::Delta { from, to, entries } => SnapshotDelta {
            from,
            to,
            entries: entries
                .into_iter()
                .map(|e| dydbscan_core::DeltaEntry {
                    id: e.id,
                    before: e.before,
                    after: e.after,
                })
                .collect(),
        },
        WireFeed::Reset { oldest, current } => {
            panic!("feed reset ({oldest}, {current}) inside the tracked window")
        }
    }
}

#[test]
fn change_feed_composes_and_matches_local_between() {
    let cfg = ServerConfig::default();
    let server = Server::start(cfg.clone()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let mut engine = replica(&cfg);
    engine.set_track_deltas(true);
    let mut snaps: BTreeMap<u64, Arc<dydbscan_core::ClusterSnapshot>> = BTreeMap::new();
    snaps.insert(0, engine.snapshot());

    // A scripted mixed history: inserts that merge clusters, then
    // deletions that split and kill them, each step one epoch.
    let mut rng = SplitMix64::new(2017);
    let side = 16.0;
    let mut alive: Vec<PointId> = Vec::new();
    let mut step_deltas: Vec<SnapshotDelta> = Vec::new();
    let mut prev_epoch = 0u64;
    for step in 0..8 {
        let epoch = if step % 3 == 2 && alive.len() >= 24 {
            // Delete a deterministic third of the oldest survivors.
            let kill: Vec<PointId> = alive.iter().step_by(3).copied().collect();
            alive.retain(|id| !kill.contains(id));
            let epoch = client.delete(&kill).unwrap();
            engine.delete_batch(&kill);
            epoch
        } else {
            let rows = gen_rows(&mut rng, 48, side);
            let (epoch, ids) = client.insert(&rows).unwrap();
            assert_eq!(ids, engine.insert_batch(&rows));
            alive.extend(ids);
            epoch
        };
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), epoch);
        snaps.insert(epoch, snap);

        // The single client is the only mutator, so the feed spans
        // exactly prev_epoch → epoch.
        let delta = as_delta(client.changed_since(prev_epoch).unwrap());
        assert_eq!((delta.from, delta.to), (prev_epoch, epoch));
        let local = SnapshotDelta::between(&snaps[&prev_epoch], &snaps[&epoch]);
        assert_eq!(
            delta.entries, local.entries,
            "wire step delta {prev_epoch}→{epoch} diverged from the replica"
        );
        step_deltas.push(delta);
        prev_epoch = epoch;
    }

    // Composition across the whole history must equal the direct diff,
    // over the wire and against the replica's endpoint snapshots.
    let composed = step_deltas
        .iter()
        .skip(1)
        .fold(step_deltas[0].clone(), |acc, d| acc.compose(d));
    let direct = as_delta(client.changed_since(0).unwrap());
    assert_eq!((composed.from, composed.to), (direct.from, direct.to));
    assert_eq!(
        composed.entries, direct.entries,
        "composed feed != direct wire diff"
    );
    let local = SnapshotDelta::between(&snaps[&0], &snaps[&prev_epoch]);
    assert_eq!(
        direct.entries, local.entries,
        "direct wire diff != local between"
    );

    client.shutdown().unwrap();
    drop(client);
    assert!(server.join().unwrap().epochs_monotone);
}

#[test]
fn malformed_bytes_get_error_responses_never_panics() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    // Unknown opcode → error response, connection stays usable.
    let resp = client
        .raw_call(&[0x63])
        .unwrap()
        .expect("connection must stay open");
    assert_eq!(resp[0], 1, "unknown opcode must answer an error frame");
    assert!(
        client.epoch().is_ok(),
        "connection must survive a bad opcode"
    );

    // Truncated body: GROUP_BY claiming 5 ids with none attached.
    let resp = client
        .raw_call(&[4, 5, 0, 0, 0])
        .unwrap()
        .expect("still open");
    assert_eq!(resp[0], 1, "truncated body must answer an error frame");

    // Hostile count: far more ids than the frame could carry; must be
    // rejected up front, not allocated.
    let resp = client
        .raw_call(&[4, 0xff, 0xff, 0xff, 0x7f])
        .unwrap()
        .expect("still open");
    assert_eq!(resp[0], 1, "hostile count must answer an error frame");

    // Empty frame → error, and the connection still answers.
    let resp = client.raw_call(&[]).unwrap().expect("still open");
    assert_eq!(resp[0], 1);
    assert!(client.group_all().is_ok());

    // Absurd length prefix on a raw socket: the server must drop the
    // connection without reading 4 GiB — and keep serving others.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        let mut buf = [0u8; 16];
        let n = raw.read(&mut buf).unwrap_or(0);
        assert_eq!(
            n, 0,
            "oversized prefix must close the connection, not answer"
        );
    }
    let mut fresh = Client::connect(addr).unwrap();
    assert!(
        fresh.epoch().is_ok(),
        "server must keep serving after a hostile peer"
    );
    drop(client);

    fresh.shutdown().unwrap();
    drop(fresh);
    let stats = server.join().unwrap();
    assert!(stats.epochs_monotone);
}
