//! Heavier randomized stress tests of the substrates through their public
//! interfaces: HDT connectivity at larger scales, kd-tree/R-tree churn,
//! and grid behaviour under adversarial (axis-aligned, colinear,
//! boundary-heavy) inputs.

use dydbscan::conn::{DynConnectivity, HdtConnectivity, UnionFind};
use dydbscan::geom::{dist_sq, SplitMix64};
use dydbscan::spatial::{KdTree, RTree};

#[test]
fn hdt_large_random_graph_against_offline_unionfind() {
    let n: u32 = 300;
    let mut rng = SplitMix64::new(0xC0FFEE);
    let mut h = HdtConnectivity::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for step in 0..6_000 {
        let op = rng.next_below(100);
        if op < 55 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            if u != v {
                let key = (u.min(v), u.max(v));
                if !edges.contains(&key) && h.insert_edge(u, v) {
                    edges.push(key);
                }
            }
        } else if op < 90 {
            if !edges.is_empty() {
                let i = rng.next_below(edges.len() as u64) as usize;
                let (u, v) = edges.swap_remove(i);
                assert!(h.delete_edge(u, v), "step {step}");
            }
        } else {
            // spot-check 20 random pairs against offline union-find
            let mut uf = UnionFind::with_len(n as usize);
            for &(u, v) in &edges {
                uf.union(u, v);
            }
            for _ in 0..20 {
                let u = rng.next_below(n as u64) as u32;
                let v = rng.next_below(n as u64) as u32;
                assert_eq!(h.connected(u, v), uf.same(u, v), "step {step} ({u},{v})");
            }
        }
    }
}

#[test]
fn hdt_wheel_graph_tear_down() {
    // A wheel: hub connected to a long cycle. Deleting hub spokes one at a
    // time forces replacement searches through the cycle at rising levels.
    let n = 128u32;
    let mut h = HdtConnectivity::new();
    for i in 0..n {
        h.insert_edge(i, (i + 1) % n); // cycle
        h.insert_edge(i, n); // spoke to hub
    }
    for i in 0..n {
        assert!(h.delete_edge(i, n));
        assert!(
            h.connected(0, (i + 1) % n),
            "cycle keeps everything connected"
        );
    }
    // now tear the cycle: one cut keeps it connected (a path), two split it
    assert!(h.delete_edge(0, 1));
    assert!(h.connected(0, 1), "path still connects the long way around");
    assert!(h.delete_edge(64, 65));
    assert!(!h.connected(64, 65));
    assert!(!h.connected(0, 1));
    assert!(h.connected(1, 64), "segment 1..=64 intact");
    assert!(h.connected(65, 0), "segment 65..=127,0 intact");
    assert_eq!(h.num_components(), 3); // two path halves + isolated hub
}

#[test]
fn kdtree_colinear_and_axis_aligned_points() {
    // Degenerate geometry: all points on one line, many ties per axis.
    let mut t = KdTree::<2>::new();
    let pts: Vec<[f64; 2]> = (0..500).map(|i| [(i % 50) as f64, 0.0]).collect();
    for (i, p) in pts.iter().enumerate() {
        t.insert(*p, i as u32);
    }
    for q in 0..50 {
        let qp = [q as f64, 0.0];
        let brute = pts.iter().filter(|p| dist_sq(p, &qp) <= 4.0).count();
        assert_eq!(t.count_within_sandwich(&qp, 2.0, 2.0), brute);
    }
    // remove every second point, re-check
    for (i, p) in pts.iter().enumerate() {
        if i % 2 == 0 {
            assert!(t.remove(p, i as u32));
        }
    }
    for q in 0..50 {
        let qp = [q as f64, 0.0];
        let brute = pts
            .iter()
            .enumerate()
            .filter(|(i, p)| i % 2 == 1 && dist_sq(p, &qp) <= 4.0)
            .count();
        assert_eq!(t.count_within_sandwich(&qp, 2.0, 2.0), brute);
    }
}

#[test]
fn kdtree_full_drain_and_refill_many_rounds() {
    let mut rng = SplitMix64::new(12);
    let mut t = KdTree::<3>::new();
    for round in 0..10 {
        let pts: Vec<[f64; 3]> = (0..300)
            .map(|_| std::array::from_fn(|_| rng.next_f64() * 10.0))
            .collect();
        for (i, p) in pts.iter().enumerate() {
            t.insert(*p, (round * 1000 + i) as u32);
        }
        assert_eq!(t.len(), 300);
        for (i, p) in pts.iter().enumerate() {
            assert!(t.remove(p, (round * 1000 + i) as u32));
        }
        assert!(t.is_empty(), "round {round}");
        assert!(t.nearest(&[0.0; 3]).is_none());
    }
}

#[test]
fn rtree_skewed_then_uniform_mix() {
    let mut rng = SplitMix64::new(55);
    let mut t = RTree::<2>::new();
    let mut live: Vec<([f64; 2], u32)> = Vec::new();
    let mut id = 0u32;
    // phase 1: highly skewed line cluster
    for i in 0..800 {
        let p = [i as f64 * 0.01, 100.0];
        t.insert(p, id);
        live.push((p, id));
        id += 1;
    }
    // phase 2: uniform blanket
    for _ in 0..800 {
        let p = [rng.next_f64() * 100.0, rng.next_f64() * 100.0];
        t.insert(p, id);
        live.push((p, id));
        id += 1;
    }
    // phase 3: delete all of phase 1
    for &(p, i) in live.iter().take(800) {
        assert!(t.remove(&p, i));
    }
    live.drain(..800);
    // verify queries against brute force
    for _ in 0..60 {
        let q = [rng.next_f64() * 100.0, rng.next_f64() * 100.0];
        let r = rng.next_f64() * 10.0;
        let mut got = Vec::new();
        t.collect_within(&q, r, &mut got);
        let want = live.iter().filter(|(p, _)| dist_sq(p, &q) <= r * r).count();
        assert_eq!(got.len(), want);
    }
}

#[test]
fn grid_heavy_boundary_traffic() {
    use dydbscan::grid::GridIndex;
    // eps chosen so side = 1: every integer point sits on a cell corner.
    let eps = 2f64.sqrt();
    let mut g = GridIndex::<2>::new(eps, 0.001);
    let mut pts = Vec::new();
    for x in -6..6 {
        for y in -6..6 {
            pts.push([x as f64, y as f64]);
        }
    }
    for (i, p) in pts.iter().enumerate() {
        g.insert_point(p, i as u32);
    }
    for (i, q) in pts.iter().enumerate() {
        let brute = pts.iter().filter(|p| dist_sq(p, q) <= eps * eps).count();
        assert_eq!(g.count_ball_exact(q), brute, "query {i}");
    }
    // remove a checkerboard and re-verify
    for (i, p) in pts.iter().enumerate() {
        if (p[0] as i64 + p[1] as i64) % 2 == 0 {
            g.remove_point(p, i as u32);
        }
    }
    for q in pts.iter() {
        let brute = pts
            .iter()
            .filter(|p| (p[0] as i64 + p[1] as i64) % 2 != 0 && dist_sq(p, q) <= eps * eps)
            .count();
        assert_eq!(g.count_ball_exact(q), brute);
    }
}
