//! The epoch-snapshot read path under fire.
//!
//! Two families of guarantees:
//!
//! 1. **Differential**: snapshot-path `group_by` / `group_all` must
//!    equal the pre-refactor mutable walk (`direct_group_by`, retained
//!    on every engine as the oracle) on all three engines, at `rho = 0`
//!    and `rho = 0.25`, after every churn checkpoint.
//! 2. **Concurrent**: N reader threads hammering `Arc<ClusterSnapshot>`s
//!    while the owner flushes insert/delete batches must see answers
//!    that are internally consistent (subset queries equal restrictions
//!    of the full clustering) and equal to a sequential replay frozen at
//!    each snapshot's epoch — the published artifact is never written
//!    through.
//!
//! The suite sweeps its own thread budgets {1, 2, 4}, so the CI
//! `test-threads` matrix exercises the pool-parallel `group_all` merge
//! at every crew size.

use dydbscan::geom::Point;
use dydbscan::{
    Clustering, DynamicClusterer, FullDynDbscan, IncDbscan, Params, PointId, SemiDynDbscan,
};
use dydbscan_geom::SplitMix64;
use std::sync::Arc;

fn spray<const D: usize>(rng: &mut SplitMix64, n: usize, extent: f64) -> Vec<Point<D>> {
    (0..n)
        .map(|_| std::array::from_fn(|_| rng.next_f64() * extent))
        .collect()
}

/// Random subset of the alive ids for restriction checks.
fn subset(rng: &mut SplitMix64, ids: &[PointId]) -> Vec<PointId> {
    ids.iter()
        .copied()
        .filter(|_| rng.next_below(3) == 0)
        .collect()
}

// ---------------------------------------------------------------------
// 1. Differential: snapshot path == old mutable path
// ---------------------------------------------------------------------

#[test]
fn semi_snapshot_path_equals_direct_path() {
    for rho in [0.0, 0.25] {
        let mut rng = SplitMix64::new(0x5E111 + (rho * 100.0) as u64);
        let params = Params::new(1.0, 3).with_rho(rho);
        let mut algo = SemiDynDbscan::<2>::new(params).with_threads(2);
        let mut ids = Vec::new();
        for round in 0..8 {
            if round % 2 == 0 {
                let pts = spray::<2>(&mut rng, 120, 10.0);
                ids.extend(algo.insert_batch(&pts));
            } else {
                for p in spray::<2>(&mut rng, 40, 10.0) {
                    ids.push(algo.insert(p));
                }
            }
            let snap_all = algo.group_all();
            assert_eq!(snap_all, algo.direct_group_all(), "rho {rho} round {round}");
            let q = subset(&mut rng, &ids);
            assert_eq!(
                algo.group_by(&q),
                algo.direct_group_by(&q),
                "rho {rho} round {round} subset"
            );
            assert_eq!(algo.group_by(&q), snap_all.restrict(&q));
        }
    }
}

#[test]
fn full_snapshot_path_equals_direct_path() {
    for rho in [0.0, 0.25] {
        let mut rng = SplitMix64::new(0xF011 + (rho * 100.0) as u64);
        let params = Params::new(1.0, 3).with_rho(rho);
        let mut algo = FullDynDbscan::<2>::new(params).with_threads(2);
        let mut live: Vec<PointId> = Vec::new();
        for round in 0..10 {
            if live.len() > 60 && round % 3 == 2 {
                let mut chunk = Vec::new();
                for _ in 0..40 {
                    let i = rng.next_below(live.len() as u64) as usize;
                    chunk.push(live.swap_remove(i));
                }
                algo.delete_batch(&chunk);
            } else if round % 2 == 0 {
                live.extend(algo.insert_batch(&spray::<2>(&mut rng, 90, 9.0)));
            } else {
                for p in spray::<2>(&mut rng, 30, 9.0) {
                    live.push(algo.insert(p));
                }
                if !live.is_empty() {
                    let i = rng.next_below(live.len() as u64) as usize;
                    algo.delete(live.swap_remove(i));
                }
            }
            let snap_all = algo.group_all();
            assert_eq!(snap_all, algo.direct_group_all(), "rho {rho} round {round}");
            let q = subset(&mut rng, &live);
            assert_eq!(
                algo.group_by(&q),
                algo.direct_group_by(&q),
                "rho {rho} round {round} subset"
            );
        }
    }
}

#[test]
fn inc_snapshot_path_equals_direct_path() {
    // IncDBSCAN is exact-only: rho = 0 by contract.
    let mut rng = SplitMix64::new(0x1C0);
    let params = Params::new(1.0, 3);
    let mut algo = IncDbscan::<2>::new(params).with_threads(2);
    let mut live: Vec<PointId> = Vec::new();
    for round in 0..10 {
        if live.len() > 50 && round % 3 == 2 {
            let mut chunk = Vec::new();
            for _ in 0..25 {
                let i = rng.next_below(live.len() as u64) as usize;
                chunk.push(live.swap_remove(i));
            }
            algo.delete_batch(&chunk);
        } else if round % 2 == 0 {
            live.extend(algo.insert_batch(&spray::<2>(&mut rng, 70, 8.0)));
        } else {
            for p in spray::<2>(&mut rng, 25, 8.0) {
                live.push(algo.insert(p));
            }
            if live.len() > 5 {
                let i = rng.next_below(live.len() as u64) as usize;
                algo.delete(live.swap_remove(i));
            }
        }
        let snap_all = algo.group_all();
        assert_eq!(snap_all, algo.direct_group_all(), "round {round}");
        let q = subset(&mut rng, &live);
        assert_eq!(algo.group_by(&q), algo.direct_group_by(&q), "round {round}");
    }
}

// ---------------------------------------------------------------------
// 2. try_group_by: typed errors instead of panics
// ---------------------------------------------------------------------

#[test]
fn try_group_by_rejects_dead_and_unknown_ids_on_every_engine() {
    use dydbscan::QueryError;
    let engines: Vec<(&str, Box<dyn DynamicClusterer<2>>)> = vec![
        (
            "semi",
            Box::new(SemiDynDbscan::<2>::new(Params::new(1.0, 2))),
        ),
        (
            "full",
            Box::new(FullDynDbscan::<2>::new(Params::new(1.0, 2))),
        ),
        ("inc", Box::new(IncDbscan::<2>::new(Params::new(1.0, 2)))),
    ];
    for (name, mut c) in engines {
        let a = c.insert([0.0, 0.0]);
        let b = c.insert([0.3, 0.0]);
        assert!(c.try_group_by(&[a, b]).is_ok(), "{name}");
        // an id that was never issued
        assert_eq!(
            c.try_group_by(&[a, 999]),
            Err(QueryError::DeadPoint { id: 999 }),
            "{name}"
        );
        if c.supports_deletion() {
            c.delete(b);
            assert_eq!(
                c.try_group_by(&[b]),
                Err(QueryError::DeadPoint { id: b }),
                "{name}: deleted id must be a typed error"
            );
            assert!(c.try_group_by(&[a]).is_ok(), "{name}");
        }
        // the error names the id
        let msg = c.try_group_by(&[777]).unwrap_err().to_string();
        assert!(msg.contains("777"), "{name}: {msg}");
    }
}

#[test]
fn facade_exposes_try_group_by_and_snapshot() {
    let mut c = dydbscan::DbscanBuilder::new(1.0, 2).build_dyn(3).unwrap();
    let a = c.insert(&[0.0, 0.0, 0.0]);
    let b = c.insert(&[0.4, 0.0, 0.0]);
    assert!(c.try_group_by(&[a, b]).is_ok());
    assert!(c.try_group_by(&[a, 5000]).is_err());
    let snap = c.snapshot();
    c.delete(b);
    // the published snapshot stays frozen at its epoch
    assert!(snap.is_alive(b));
    assert!(snap.try_group_by(&[a, b]).is_ok());
    assert!(c.try_group_by(&[b]).is_err());
}

// ---------------------------------------------------------------------
// 3. Concurrent readers vs a flushing writer
// ---------------------------------------------------------------------

/// The writer publishes `(snapshot, expected clustering at that epoch)`
/// pairs; readers pull them concurrently and verify every answer.
#[test]
fn readers_hammer_snapshots_while_writer_flushes() {
    for threads in [1usize, 2, 4] {
        let params = Params::new(1.0, 3).with_rho(0.001);
        let mut algo = FullDynDbscan::<2>::new(params).with_threads(threads);
        // Shadow replay: the same op sequence through a second engine,
        // queried through the *direct* (pre-snapshot) walk — the
        // sequential-replay reference for each epoch.
        let mut replay = FullDynDbscan::<2>::new(params);
        let mut rng = SplitMix64::new(0xC0FFEE + threads as u64);
        let mut live: Vec<PointId> = Vec::new();

        type Published = (Arc<dydbscan::ClusterSnapshot>, Clustering, Vec<PointId>);
        let published: std::sync::Mutex<Vec<Published>> = std::sync::Mutex::new(Vec::new());
        let done = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|s| {
            // N readers: grab whatever epochs exist and verify them.
            for r in 0..4 {
                let published = &published;
                let done = &done;
                s.spawn(move || {
                    let mut rng = SplitMix64::new(0xBEEF + r);
                    let mut checked = 0usize;
                    loop {
                        let batch: Vec<Published> = {
                            let guard = published.lock().unwrap();
                            guard.clone()
                        };
                        for (snap, expected, ids) in &batch {
                            // full clustering at the frozen epoch
                            assert_eq!(
                                &snap.group_all(),
                                expected,
                                "reader {r}: snapshot diverged from its epoch's replay"
                            );
                            // internal consistency: subsets restrict
                            let q = subset(&mut rng, ids);
                            assert_eq!(
                                snap.group_by(&q),
                                expected.restrict(&q),
                                "reader {r}: subset inconsistent with the epoch clustering"
                            );
                            checked += 1;
                        }
                        // ORDERING: Acquire — pairs with the writer's
                        // Release store: a reader that observes the
                        // shutdown flag also observes every snapshot
                        // published before it (belt and braces; the
                        // `published` mutex orders those on its own).
                        if done.load(std::sync::atomic::Ordering::Acquire) && !batch.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    assert!(checked > 0, "reader {r} never verified an epoch");
                });
            }

            // The writer: flush batches, publish an epoch after each.
            for round in 0..12 {
                if live.len() > 80 && round % 3 == 2 {
                    let mut chunk = Vec::new();
                    for _ in 0..50 {
                        let i = rng.next_below(live.len() as u64) as usize;
                        chunk.push(live.swap_remove(i));
                    }
                    algo.delete_batch(&chunk);
                    replay.delete_batch(&chunk);
                } else {
                    let pts = spray::<2>(&mut rng, 100, 9.0);
                    live.extend(algo.insert_batch(&pts));
                    replay.insert_batch(&pts);
                }
                let snap = algo.snapshot();
                let expected = replay.direct_group_all();
                assert_eq!(
                    snap.group_all(),
                    expected,
                    "threads {threads} round {round}: epoch must equal its sequential replay"
                );
                published
                    .lock()
                    .unwrap()
                    .push((snap, expected, live.clone()));
            }
            // ORDERING: Release — pairs with the readers' Acquire load
            // of the shutdown flag (see above).
            done.store(true, std::sync::atomic::Ordering::Release);
        });

        // Epochs must be strictly increasing across publishes.
        let guard = published.lock().unwrap();
        for w in guard.windows(2) {
            assert!(
                w[0].0.epoch() < w[1].0.epoch(),
                "threads {threads}: epochs must advance"
            );
        }
    }
}

/// The owner keeps updating between `snapshot()` and the readers'
/// queries; published snapshots must never observe those updates.
#[test]
fn published_snapshot_is_immune_to_later_updates() {
    let params = Params::new(1.0, 3);
    let mut algo = FullDynDbscan::<2>::new(params);
    let mut rng = SplitMix64::new(42);
    let ids = algo.insert_batch(&spray::<2>(&mut rng, 200, 8.0));
    let snap = algo.snapshot();
    let frozen = snap.group_all();
    let frozen_len = snap.len();
    // mutate heavily
    algo.delete_batch(&ids[..100]);
    algo.insert_batch(&spray::<2>(&mut rng, 150, 8.0));
    assert_eq!(snap.group_all(), frozen, "snapshot changed under the owner");
    assert_eq!(snap.len(), frozen_len);
    for &id in &ids[..100] {
        assert!(snap.is_alive(id), "deleted later, alive at this epoch");
    }
    // and the engine's *current* view moved on
    assert_ne!(algo.snapshot().epoch(), snap.epoch());
}

/// `group_all` through the pool must be bit-identical to the sequential
/// scan at every thread count (and to the snapshot's own sequential
/// `group_all`).
#[test]
fn pooled_group_all_is_bit_identical_across_thread_counts() {
    let mut reference: Option<Clustering> = None;
    for threads in [1usize, 2, 4, 8] {
        let params = Params::new(1.0, 3).with_rho(0.001);
        let mut algo = FullDynDbscan::<2>::new(params).with_threads(threads);
        let mut rng = SplitMix64::new(777);
        let ids = algo.insert_batch(&spray::<2>(&mut rng, 3000, 25.0));
        algo.delete_batch(&ids[..500]);
        let got = algo.group_all();
        assert_eq!(got, algo.snapshot().group_all(), "threads {threads}");
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "threads {threads}"),
        }
    }
}
