//! Failure injection and adversarial edge cases across the public API:
//! degenerate parameters, boundary-sitting coordinates, duplicate points,
//! mass deletion, stale ids, and tiny/empty datasets.

use dydbscan::core::full::FullDynDbscan;
use dydbscan::geom::SplitMix64;
use dydbscan::{brute_force_exact, relabel, IncDbscan, Params, PointId, SemiDynDbscan};

#[test]
#[should_panic(expected = "eps must be positive")]
fn rejects_nan_eps() {
    Params::new(f64::NAN, 3);
}

#[test]
#[should_panic(expected = "rho")]
fn rejects_negative_rho() {
    Params::new(1.0, 3).with_rho(-0.1);
}

#[test]
#[should_panic(expected = "insertion-only")]
fn semi_dynamic_rejects_deletion_via_public_contract() {
    // The public trait surfaces the paper's regime restriction loudly.
    use dydbscan::{Algorithm, DbscanBuilder};
    let mut semi = DbscanBuilder::new(1.0, 2)
        .algorithm(Algorithm::SemiDynamic)
        .build::<2>()
        .expect("valid configuration");
    assert!(!semi.supports_deletion());
    let id = semi.insert([0.0, 0.0]);
    semi.delete(id);
}

#[test]
#[should_panic(expected = "deleted")]
fn query_of_deleted_point_panics() {
    let mut algo = FullDynDbscan::<2>::new(Params::new(1.0, 2));
    let id = algo.insert([0.0, 0.0]);
    algo.delete(id);
    let _ = algo.group_by(&[id]);
}

#[test]
fn points_exactly_on_cell_boundaries() {
    // side = eps / sqrt(2); craft points that land exactly on integer
    // multiples of the side so cell assignment edges are exercised.
    let eps = std::f64::consts::SQRT_2; // side = 1.0 exactly
    let params = Params::new(eps, 2);
    let pts: Vec<[f64; 2]> = vec![
        [0.0, 0.0],
        [1.0, 0.0],
        [0.0, 1.0],
        [1.0, 1.0],
        [2.0, 2.0],
        [-1.0, -1.0],
        [-1.0, 0.0],
    ];
    let mut algo = FullDynDbscan::<2>::new(params);
    let ids: Vec<PointId> = pts.iter().map(|p| algo.insert(*p)).collect();
    let got = algo.group_all();
    let want = relabel(&brute_force_exact(&pts, &params), &ids);
    assert_eq!(got, want);
    // delete the boundary points and re-check
    for &id in &ids[..3] {
        algo.delete(id);
    }
    let got = algo.group_all();
    let want = relabel(&brute_force_exact(&pts[3..], &params), &ids[3..]);
    assert_eq!(got, want);
}

#[test]
fn negative_and_mixed_sign_coordinates() {
    let params = Params::new(1.0, 3);
    let mut rng = SplitMix64::new(77);
    let pts: Vec<[f64; 2]> = (0..200)
        .map(|_| [rng.next_f64() * 10.0 - 5.0, rng.next_f64() * 10.0 - 5.0])
        .collect();
    let mut algo = FullDynDbscan::<2>::new(params);
    let ids: Vec<PointId> = pts.iter().map(|p| algo.insert(*p)).collect();
    assert_eq!(
        algo.group_all(),
        relabel(&brute_force_exact(&pts, &params), &ids)
    );
}

#[test]
fn many_duplicates_of_one_location() {
    // MinPts-fold duplicates must become one cluster; deletion below the
    // threshold must dissolve it.
    let params = Params::new(0.5, 10);
    let mut algo = FullDynDbscan::<2>::new(params);
    let ids: Vec<PointId> = (0..12).map(|_| algo.insert([3.0, 3.0])).collect();
    let g = algo.group_all();
    assert_eq!(g.groups.len(), 1);
    assert_eq!(g.groups[0].len(), 12);
    for &id in &ids[..3] {
        algo.delete(id);
    }
    let g = algo.group_all();
    assert!(g.groups.is_empty(), "9 < MinPts=10 duplicates are noise");
    assert_eq!(g.noise.len(), 9);
}

#[test]
fn minpts_one_single_point_clusters() {
    let mut algo = FullDynDbscan::<2>::new(Params::new(1.0, 1));
    let a = algo.insert([0.0, 0.0]);
    let g = algo.group_by(&[a]);
    assert_eq!(g.groups, vec![vec![a]]);
    assert!(g.noise.is_empty());
    algo.delete(a);
    assert!(algo.is_empty());
}

#[test]
fn huge_min_pts_everything_noise() {
    let mut algo = FullDynDbscan::<2>::new(Params::new(5.0, 1_000));
    let ids: Vec<PointId> = (0..50)
        .map(|i| algo.insert([i as f64 * 0.1, 0.0]))
        .collect();
    let g = algo.group_all();
    assert!(g.groups.is_empty());
    assert_eq!(g.noise.len(), ids.len());
}

#[test]
fn interleaved_delete_reinsert_same_coordinates() {
    // Ids are never reused; repeated delete/reinsert at identical coords
    // exercises the grid's cell drain/refill and the aBCP log tombstones.
    let params = Params::new(1.0, 3).with_rho(0.001);
    let mut algo = FullDynDbscan::<2>::new(params);
    let mut current: Vec<PointId> = Vec::new();
    for round in 0..20 {
        for k in 0..9 {
            current.push(algo.insert([(k % 3) as f64 * 0.4, (k / 3) as f64 * 0.4]));
        }
        let g = algo.group_all();
        assert_eq!(g.groups.len(), 1, "round {round}");
        // delete in FIFO order, half the points
        for id in current.drain(..5) {
            algo.delete(id);
        }
    }
    algo.validate_invariants();
}

#[test]
fn empty_query_returns_empty_result() {
    let mut algo = FullDynDbscan::<2>::new(Params::new(1.0, 2));
    algo.insert([0.0, 0.0]);
    let g = algo.group_by(&[]);
    assert!(g.groups.is_empty() && g.noise.is_empty());
}

#[test]
fn incdbscan_boundary_and_duplicates() {
    let params = Params::new(1.0, 4);
    let mut inc = IncDbscan::<2>::new(params);
    let ids: Vec<PointId> = (0..8).map(|_| inc.insert([1.0, 1.0])).collect();
    assert_eq!(inc.group_all().groups.len(), 1);
    for id in ids {
        inc.delete(id);
    }
    assert!(inc.is_empty());
    // boundary-ish coordinates
    let pts: Vec<[f64; 2]> = vec![[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [0.5, 0.0], [1.5, 0.0]];
    let ids: Vec<PointId> = pts.iter().map(|p| inc.insert(*p)).collect();
    let want = relabel(&brute_force_exact(&pts, &params), &ids);
    assert_eq!(inc.group_all(), want);
}

#[test]
fn extreme_coordinates_far_apart() {
    // large magnitudes must not overflow cell coordinates (i32 grid keys)
    let params = Params::new(1_000.0, 2);
    let mut algo = FullDynDbscan::<2>::new(params);
    let a = algo.insert([1.0e9, -1.0e9]);
    let b = algo.insert([1.0e9 + 500.0, -1.0e9]);
    let c = algo.insert([-1.0e9, 1.0e9]);
    let g = algo.group_by(&[a, b, c]);
    assert!(g.same_cluster(a, b));
    assert!(g.is_noise(c));
}

#[test]
fn semi_dynamic_massive_duplicate_then_spread() {
    let params = Params::new(1.0, 5).with_rho(0.01);
    let mut semi = SemiDynDbscan::<3>::new(params);
    for _ in 0..30 {
        semi.insert([0.0, 0.0, 0.0]);
    }
    let mut rng = SplitMix64::new(3);
    for _ in 0..100 {
        semi.insert(std::array::from_fn(|_| rng.next_f64() * 3.0));
    }
    let g = semi.group_all();
    assert!(g.num_groups() >= 1);
    // the duplicate pile must be one cluster with all 30 members together
    let dup_groups = g.groups_of(0);
    assert_eq!(dup_groups.len(), 1);
}
