//! Property-style tests over the system's contracts, driven by a
//! deterministic SplitMix64 case generator (the workspace is
//! dependency-free, so no proptest):
//!
//! * the sandwich guarantee (Theorem 3) for arbitrary point sets,
//!   parameters and update orders;
//! * exactness of every variant at `rho = 0`;
//! * C-group-by consistency: any sub-query must equal the restriction of
//!   the full clustering (the problem definition's "same C(P)" rule);
//! * internal invariant audits of the fully-dynamic structure after
//!   arbitrary interleavings of insertions and deletions.

use dydbscan::core::full::FullDynDbscan;
use dydbscan::geom::SplitMix64;
use dydbscan::{brute_force_exact, check_sandwich, relabel, Params, PointId, SemiDynDbscan};

const CASES: u64 = 48;

/// Quantized coordinates (ties and exact boundary hits are common) so
/// clusters actually form at eps = 1.
fn arb_points(rng: &mut SplitMix64, max_len: usize) -> Vec<[f64; 2]> {
    let n = 1 + rng.next_below(max_len as u64 - 1) as usize;
    (0..n)
        .map(|_| {
            [
                rng.next_below(60) as f64 * 0.25,
                rng.next_below(60) as f64 * 0.25,
            ]
        })
        .collect()
}

/// Deletes a random subset (possibly empty) of the inserted points;
/// returns the surviving (points, ids).
fn churn_deletions(
    rng: &mut SplitMix64,
    algo: &mut FullDynDbscan<2>,
    pts: &[[f64; 2]],
    ids: &[PointId],
    max_dels: usize,
) -> (Vec<[f64; 2]>, Vec<PointId>) {
    let mut alive = vec![true; pts.len()];
    let n_dels = rng.next_below(max_dels as u64 + 1) as usize;
    for _ in 0..n_dels {
        let k = rng.next_below(pts.len() as u64) as usize;
        if alive[k] {
            algo.delete(ids[k]);
            alive[k] = false;
        }
    }
    let live_pts = pts
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|(p, _)| *p)
        .collect();
    let live_ids = ids
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|(i, _)| *i)
        .collect();
    (live_pts, live_ids)
}

#[test]
fn semi_exact_matches_bruteforce() {
    let mut rng = SplitMix64::new(0xA11CE);
    for case in 0..CASES {
        let pts = arb_points(&mut rng, 120);
        let min_pts = 1 + rng.next_below(5) as usize;
        let params = Params::new(1.0, min_pts);
        let mut semi = SemiDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| semi.insert(*p)).collect();
        let got = semi.group_all();
        let want = relabel(&brute_force_exact(&pts, &params), &ids);
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn full_exact_matches_bruteforce_with_deletions() {
    let mut rng = SplitMix64::new(0xB0B);
    for case in 0..CASES {
        let pts = arb_points(&mut rng, 90);
        let min_pts = 1 + rng.next_below(5) as usize;
        let params = Params::new(1.0, min_pts);
        let mut algo = FullDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| algo.insert(*p)).collect();
        let (live_pts, live_ids) = churn_deletions(&mut rng, &mut algo, &pts, &ids, 40);
        let got = algo.group_all();
        let want = relabel(&brute_force_exact(&live_pts, &params), &live_ids);
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn sandwich_guarantee_under_churn() {
    let mut rng = SplitMix64::new(0x5A4D);
    for case in 0..CASES {
        let pts = arb_points(&mut rng, 80);
        let rho = (1 + rng.next_below(39)) as f64 / 100.0;
        let params = Params::new(1.0, 3).with_rho(rho);
        let mut algo = FullDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| algo.insert(*p)).collect();
        let (live_pts, live_ids) = churn_deletions(&mut rng, &mut algo, &pts, &ids, 30);
        let got = algo.group_all();
        let c1 = relabel(
            &brute_force_exact(&live_pts, &Params::new(1.0, 3)),
            &live_ids,
        );
        let c2 = relabel(
            &brute_force_exact(&live_pts, &Params::new(1.0 + rho, 3)),
            &live_ids,
        );
        check_sandwich(&c1, &got, &c2).unwrap_or_else(|e| panic!("case {case}: {e}"));
        algo.validate_invariants();
    }
}

#[test]
fn group_by_equals_restriction_of_group_all() {
    let mut rng = SplitMix64::new(0x6E57);
    for case in 0..CASES {
        let pts = arb_points(&mut rng, 70);
        let rho = rng.next_below(30) as f64 / 100.0;
        let params = Params::new(1.0, 3).with_rho(rho);
        let mut algo = FullDynDbscan::<2>::new(params);
        let ids: Vec<PointId> = pts.iter().map(|p| algo.insert(*p)).collect();
        let q: Vec<PointId> = ids
            .iter()
            .filter(|_| rng.next_below(2) == 1)
            .copied()
            .collect();
        let all = algo.group_all();
        let sub = algo.group_by(&q);
        assert_eq!(sub, all.restrict(&q), "case {case}");
    }
}

#[test]
fn insertion_order_is_irrelevant_at_rho_zero() {
    let mut rng = SplitMix64::new(0x0D5E);
    for case in 0..CASES {
        let pts = arb_points(&mut rng, 80);
        let params = Params::new(1.0, 3);
        let mut a = SemiDynDbscan::<2>::new(params);
        let ids_a: Vec<PointId> = pts.iter().map(|p| a.insert(*p)).collect();
        // shuffled order
        let mut order: Vec<usize> = (0..pts.len()).collect();
        rng.shuffle(&mut order);
        let mut b = SemiDynDbscan::<2>::new(params);
        let mut ids_b = vec![0 as PointId; pts.len()];
        for &k in &order {
            ids_b[k] = b.insert(pts[k]);
        }
        // map both to the original indices and compare
        let ga = a.group_all();
        let gb = b.group_all();
        let inv_a: std::collections::HashMap<PointId, u32> = ids_a
            .iter()
            .enumerate()
            .map(|(k, &i)| (i, k as u32))
            .collect();
        let inv_b: std::collections::HashMap<PointId, u32> = ids_b
            .iter()
            .enumerate()
            .map(|(k, &i)| (i, k as u32))
            .collect();
        let norm = |g: &dydbscan::GroupBy, inv: &std::collections::HashMap<PointId, u32>| {
            let mut out = dydbscan::GroupBy {
                groups: g
                    .groups
                    .iter()
                    .map(|grp| grp.iter().map(|p| inv[p]).collect())
                    .collect(),
                noise: g.noise.iter().map(|p| inv[p]).collect(),
            };
            out.normalize();
            out
        };
        assert_eq!(norm(&ga, &inv_a), norm(&gb, &inv_b), "case {case}");
    }
}
