//! End-to-end runs of the paper's own workload generator (Section 8.1)
//! through every algorithm, checking the *answers* (not just the speed):
//! the experiments' stringent requirement is that ρ-double-approximate
//! DBSCAN with `rho = 0.001` returns exactly the clusters of its
//! ρ-approximate counterpart.

use dydbscan::core::full::FullDynDbscan;
use dydbscan::{
    relabel, static_cluster, IncDbscan, Op, Params, PointId, SemiDynDbscan, WorkloadSpec,
};

const EPS: f64 = 200.0; // 100 * d with d = 2
const MIN_PTS: usize = 10;

#[test]
fn semi_dynamic_workload_queries_match_incdbscan() {
    // rho = 0: Semi-Exact and IncDBSCAN are both exact; every C-group-by
    // query in the workload must coincide.
    let w = WorkloadSpec::semi(2_000, 5).build::<2>();
    let params = Params::new(EPS, MIN_PTS);
    let mut semi = SemiDynDbscan::<2>::new(params);
    let mut inc = IncDbscan::<2>::new(params);
    let mut ids: Vec<PointId> = Vec::new();
    let mut n_checked = 0;
    for op in &w.ops {
        match op {
            Op::Insert(p) => {
                let a = semi.insert(*p);
                let b = inc.insert(*p);
                assert_eq!(a, b);
                ids.push(a);
            }
            Op::Delete(_) => unreachable!("semi workload"),
            Op::Query(ordinals) => {
                let q: Vec<PointId> = ordinals.iter().map(|&o| ids[o as usize]).collect();
                assert_eq!(semi.group_by(&q), inc.group_by(&q));
                n_checked += 1;
            }
        }
    }
    assert!(n_checked > 10, "workload produced only {n_checked} queries");
}

#[test]
fn fully_dynamic_workload_queries_match_incdbscan() {
    let w = WorkloadSpec::full(2_400, 6).build::<2>();
    let params = Params::new(EPS, MIN_PTS);
    let mut full = FullDynDbscan::<2>::new(params);
    let mut inc = IncDbscan::<2>::new(params);
    let mut ids: Vec<PointId> = Vec::new();
    let mut n_checked = 0;
    for op in &w.ops {
        match op {
            Op::Insert(p) => {
                let a = full.insert(*p);
                let b = inc.insert(*p);
                assert_eq!(a, b);
                ids.push(a);
            }
            Op::Delete(o) => {
                full.delete(ids[*o as usize]);
                inc.delete(ids[*o as usize]);
            }
            Op::Query(ordinals) => {
                let q: Vec<PointId> = ordinals.iter().map(|&o| ids[o as usize]).collect();
                assert_eq!(full.group_by(&q), inc.group_by(&q), "query #{n_checked}");
                n_checked += 1;
            }
        }
    }
    assert!(n_checked > 10);
}

#[test]
fn double_approx_equals_rho_approx_on_paper_workload() {
    // The Section 8 requirement, verbatim: with rho = 0.001,
    // Double-Approx must return precisely the rho-approximate clusters.
    let w = WorkloadSpec::full(3_000, 7).build::<2>();
    let params = Params::new(EPS, MIN_PTS).with_rho(0.001);
    let mut algo = FullDynDbscan::<2>::new(params);
    let mut ids: Vec<PointId> = Vec::new();
    let mut alive: Vec<(PointId, [f64; 2])> = Vec::new();
    for op in &w.ops {
        match op {
            Op::Insert(p) => {
                let id = algo.insert(*p);
                ids.push(id);
                alive.push((id, *p));
            }
            Op::Delete(o) => {
                let id = ids[*o as usize];
                algo.delete(id);
                let pos = alive.iter().position(|&(i, _)| i == id).unwrap();
                alive.swap_remove(pos);
            }
            Op::Query(_) => {}
        }
    }
    let pts: Vec<[f64; 2]> = alive.iter().map(|&(_, p)| p).collect();
    let aids: Vec<PointId> = alive.iter().map(|&(i, _)| i).collect();
    let got = algo.group_all();
    let want = relabel(&static_cluster(&pts, &params), &aids);
    assert_eq!(got, want, "double-approx must equal rho-approximate");
    // invariant audit on the final state
    algo.validate_invariants();
}

#[test]
fn workload_runs_in_three_and_five_dims() {
    for seed in [8u64, 9] {
        let w = WorkloadSpec::full(1_200, seed).build::<3>();
        let params = Params::new(300.0, MIN_PTS).with_rho(0.001);
        let mut algo = FullDynDbscan::<3>::new(params);
        let mut ids: Vec<PointId> = Vec::new();
        for op in &w.ops {
            match op {
                Op::Insert(p) => ids.push(algo.insert(*p)),
                Op::Delete(o) => algo.delete(ids[*o as usize]),
                Op::Query(ordinals) => {
                    let q: Vec<PointId> = ordinals.iter().map(|&o| ids[o as usize]).collect();
                    let _ = algo.group_by(&q);
                }
            }
        }
        algo.validate_invariants();
    }
    let w = WorkloadSpec::full(800, 10).build::<5>();
    let params = Params::new(500.0, MIN_PTS).with_rho(0.001);
    let mut algo = FullDynDbscan::<5>::new(params);
    let mut ids: Vec<PointId> = Vec::new();
    for op in &w.ops {
        match op {
            Op::Insert(p) => ids.push(algo.insert(*p)),
            Op::Delete(o) => algo.delete(ids[*o as usize]),
            Op::Query(ordinals) => {
                let q: Vec<PointId> = ordinals.iter().map(|&o| ids[o as usize]).collect();
                let _ = algo.group_by(&q);
            }
        }
    }
    algo.validate_invariants();
}
