//! The `cargo xtask lint` engine: a dependency-free, source-level
//! linter for the concurrency-correctness rules this workspace commits
//! to (ISSUE 6).
//!
//! Rules:
//!
//! * **unsafe-safety** — every `unsafe` block / `unsafe fn` declaration /
//!   `unsafe impl` must carry a `// SAFETY:` comment (or a `# Safety`
//!   doc section for `unsafe fn`) on the same line or in the contiguous
//!   comment/attribute block immediately above. `unsafe fn(..)` *type*
//!   positions (fn-pointer types) are exempt: they impose the obligation
//!   at the call site, not the declaration site.
//! * **unsafe-registry** — the per-file count of unsafe sites must match
//!   `xtask/unsafe_registry.toml` exactly, so adding (or removing)
//!   unsafe code is always a visible, reviewed diff to a checked-in
//!   inventory.
//! * **ordering-justified** — every `Ordering::{Relaxed, Acquire,
//!   Release, AcqRel, SeqCst}` use needs an `// ORDERING:` comment
//!   explaining why that memory ordering is sufficient.
//!   `std::cmp::Ordering` (Less/Equal/Greater) never matches.
//! * **no-partial-cmp-unwrap** — bans `partial_cmp(..).unwrap()`:
//!   NaN-poisoned comparisons must go through `total_cmp` or an explicit
//!   NaN policy.
//! * **no-thread-spawn** — bans `thread::spawn` outside
//!   `crates/core/src/parallel`: ad-hoc threads bypass the pool's
//!   park/panic protocol and its schedule-exploration coverage.
//! * **no-unwrap** — bans `.unwrap()` / `.expect(` in non-test library
//!   code, with an explicit allowlist (`xtask/lint_allow.toml`) and
//!   in-source `// ALLOW(rule): reason` escapes.
//!
//! The lock-discipline rules (ISSUE 8) live in [`locks`]:
//! `guard-across-blocking`, `guard-across-wait`, `lock-order`,
//! `lock-consolidate`, `lock-registry`, `lock-comment`, and
//! `poison-surface`, driven by `xtask/lock_registry.toml`.
//!
//! The scanner is deliberately token-level, not a full parser: it strips
//! comments and string/char literals first (so prose never triggers a
//! rule), tracks `#[cfg(test)]` brace-balanced regions, and otherwise
//! matches words. That keeps it dependency-free and fast, at the price
//! of being a *policy* check, not a soundness proof — Miri and the
//! sanitizer CI jobs cover the semantic side.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod locks;

pub use locks::{parse_lock_registry, LockRegistry};

/// The atomic-ordering variants that require an `// ORDERING:` comment.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One lint finding, addressable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// One `[[allow]]` entry from `xtask/lint_allow.toml`. A grant matches a
/// finding when the rule name matches and every present scope key
/// (path prefix, line substring) matches too.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub path: Option<String>,
    pub contains: Option<String>,
    pub reason: String,
}

/// Replace comments and string/char-literal contents with spaces,
/// preserving newlines (and therefore line numbers), so rule matching
/// never fires on prose. Handles line comments, nested block comments,
/// plain/raw/byte strings, char literals, and leaves lifetimes intact.
pub fn mask_source(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out: Vec<char> = Vec::with_capacity(n);
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment; Rust block comments nest.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..", r#".."#, br".." — only when `r`
        // starts a token (not the tail of an identifier).
        if (c == 'r' || (c == 'b' && i + 1 < n && chars[i + 1] == 'r'))
            && (i == 0 || !is_ident(chars[i - 1]))
        {
            let r_at = if c == 'b' { i + 1 } else { i };
            let mut j = r_at + 1;
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' {
                for &p in &chars[i..=j] {
                    out.push(p);
                }
                i = j + 1;
                while i < n {
                    if chars[i] == '"' {
                        let mut h = 0usize;
                        while h < hashes && i + 1 + h < n && chars[i + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            out.push('"');
                            out.extend(std::iter::repeat_n('#', h));
                            i += 1 + h;
                            break;
                        }
                    }
                    out.push(blank(chars[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Plain string literal (escapes respected).
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    // An escaped newline (line continuation) must stay a
                    // newline, or every later line number shifts.
                    out.push(' ');
                    out.push(blank(chars[i + 1]));
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                out.push(blank(chars[i]));
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: 'x' and '\..' are literals;
        // 'ident (no closing quote right after one char) is a lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                out.push('\'');
                i += 1;
                while i < n && chars[i] != '\'' {
                    out.push(' ');
                    i += 1;
                }
                if i < n {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
                continue;
            }
            // Lifetime: fall through as code.
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

pub(crate) fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True for paths whose code is test/bench/example scaffolding — exempt
/// from the library-only rules (`no-unwrap`, `poison-surface`, field
/// coverage).
pub fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.starts_with("benches/")
        || rel.contains("/examples/")
        || rel.starts_with("examples/")
}

/// Per-line flags for `#[cfg(test)]` brace-balanced regions of the
/// masked source (1-based indexing not used here: index 0 = line 1 - 1).
pub fn test_region_lines(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut flags = vec![false; line_count];
    let bytes = masked.as_bytes();
    let line_of = |pos: usize| bytes[..pos].iter().filter(|&&b| b == b'\n').count();
    for (start, _) in masked.match_indices("#[cfg(test)]") {
        // Walk forward to the region's opening brace, then balance.
        let mut i = start + "#[cfg(test)]".len();
        while i < bytes.len() && bytes[i] != b'{' {
            i += 1;
        }
        if i == bytes.len() {
            continue;
        }
        let open_line = line_of(start);
        let mut depth = 0isize;
        let mut end = i;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let close_line = line_of(end.min(bytes.len() - 1));
        for flag in flags
            .iter_mut()
            .take((close_line + 1).min(line_count))
            .skip(open_line)
        {
            *flag = true;
        }
    }
    flags
}

/// True when the original line — or a comment above it within the same
/// statement / contiguous comment block — contains one of `needles`.
/// The upward scan passes over earlier lines of a multi-line statement
/// (builder chains, tuple literals) and stops at the end of the
/// *previous* statement or block (`;`, `{`, `}`), so a justification
/// must sit with the code it justifies, not merely in the same fn.
fn has_justification(orig_lines: &[&str], line_idx: usize, needles: &[&str]) -> bool {
    if needles.iter().any(|nd| orig_lines[line_idx].contains(nd)) {
        return true;
    }
    let mut l = line_idx;
    while l > 0 {
        l -= 1;
        let t = orig_lines[l].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") || t.is_empty() {
            if needles.iter().any(|nd| t.contains(nd)) {
                return true;
            }
            continue;
        }
        if t.ends_with(';') || t.ends_with('{') || t.ends_with('}') {
            return false;
        }
    }
    false
}

/// True when the line (or the line above) carries an in-source
/// `// ALLOW(rule): reason` escape for this rule.
pub(crate) fn inline_allowed(orig_lines: &[&str], line_idx: usize, rule: &str) -> bool {
    let marker = format!("ALLOW({rule})");
    if orig_lines[line_idx].contains(&marker) {
        return true;
    }
    line_idx > 0 && orig_lines[line_idx - 1].contains(&marker)
}

/// True when some `[[allow]]` grant covers this finding.
pub(crate) fn grant_allowed(allows: &[Allow], rule: &str, rel: &str, line_text: &str) -> bool {
    allows.iter().any(|a| {
        a.rule == rule
            && a.path.as_ref().is_none_or(|p| rel.starts_with(p.as_str()))
            && a.contains
                .as_ref()
                .is_none_or(|c| line_text.contains(c.as_str()))
    })
}

/// Find word-boundary occurrences of `word` in `masked`, returning byte
/// offsets.
pub(crate) fn word_occurrences(masked: &str, word: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    masked
        .match_indices(word)
        .filter(|&(pos, _)| {
            let before_ok = pos == 0 || !is_ident(bytes[pos - 1] as char);
            let after = pos + word.len();
            let after_ok = after >= bytes.len() || !is_ident(bytes[after] as char);
            before_ok && after_ok
        })
        .map(|(pos, _)| pos)
        .collect()
}

/// Classify an `unsafe` occurrence: `unsafe fn(` in type position does
/// not create an obligation site; everything else (block, fn decl,
/// impl, trait) does.
fn is_unsafe_site(masked: &str, pos: usize) -> bool {
    let rest = &masked[pos + "unsafe".len()..];
    let trimmed = rest.trim_start();
    if let Some(after_fn) = trimmed.strip_prefix("fn") {
        // `unsafe fn(` = fn-pointer type; `unsafe fn name` = declaration.
        let t = after_fn.trim_start();
        return !t.starts_with('(');
    }
    true
}

/// Lint one file. `rel` is the workspace-relative path with forward
/// slashes; returns findings plus this file's unsafe-site count (the
/// registry cross-check happens over the whole file set in
/// [`lint_sources`]).
pub fn lint_file(rel: &str, src: &str, allows: &[Allow]) -> (Vec<Violation>, usize) {
    let masked = mask_source(src);
    let orig_lines: Vec<&str> = src.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let test_lines = test_region_lines(&masked);
    let bytes = masked.as_bytes();
    let line_of = |pos: usize| bytes[..pos].iter().filter(|&&b| b == b'\n').count();
    let test_path = is_test_path(rel);
    let mut out = Vec::new();
    let mut unsafe_sites = 0usize;

    let push = |out: &mut Vec<Violation>, rule: &'static str, li: usize, msg: String| {
        let text = orig_lines.get(li).copied().unwrap_or("");
        if inline_allowed(&orig_lines, li, rule) || grant_allowed(allows, rule, rel, text) {
            return;
        }
        out.push(Violation {
            file: rel.to_string(),
            line: li + 1,
            rule,
            msg,
        });
    };

    // unsafe-safety (+ count sites for unsafe-registry).
    for pos in word_occurrences(&masked, "unsafe") {
        if !is_unsafe_site(&masked, pos) {
            continue;
        }
        unsafe_sites += 1;
        let li = line_of(pos);
        if !has_justification(&orig_lines, li, &["SAFETY:", "# Safety"]) {
            push(
                &mut out,
                "unsafe-safety",
                li,
                "unsafe site without a `// SAFETY:` comment (or `# Safety` doc section)"
                    .to_string(),
            );
        }
    }

    // ordering-justified.
    for (pos, _) in masked.match_indices("Ordering::") {
        let rest = &masked[pos + "Ordering::".len()..];
        let variant_matches = ATOMIC_ORDERINGS.iter().any(|v| {
            rest.strip_prefix(v)
                .is_some_and(|after| after.chars().next().is_none_or(|c| !is_ident(c)))
        });
        if !variant_matches {
            continue;
        }
        let li = line_of(pos);
        if !has_justification(&orig_lines, li, &["ORDERING:"]) {
            push(
                &mut out,
                "ordering-justified",
                li,
                "atomic memory ordering without an `// ORDERING:` justification".to_string(),
            );
        }
    }

    // Line-scoped bans.
    for (li, mline) in masked_lines.iter().enumerate() {
        if mline.contains("partial_cmp") && mline.contains("unwrap") {
            push(
                &mut out,
                "no-partial-cmp-unwrap",
                li,
                "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp` or handle None"
                    .to_string(),
            );
        }
        if mline.contains("thread::spawn") && !rel.starts_with("crates/core/src/parallel") {
            push(
                &mut out,
                "no-thread-spawn",
                li,
                "spawn threads through `core::parallel`, not `thread::spawn`".to_string(),
            );
        }
        if !test_path
            && !test_lines.get(li).copied().unwrap_or(false)
            && (mline.contains(".unwrap()") || mline.contains(".expect("))
        {
            push(
                &mut out,
                "no-unwrap",
                li,
                "`.unwrap()` / `.expect(` in library code; return an error or add an allow"
                    .to_string(),
            );
        }
    }

    (out, unsafe_sites)
}

/// Lint a set of `(relative_path, source)` pairs and cross-check the
/// unsafe registry. This is the pure core `run_lint` wraps; tests feed
/// it fixture sources directly.
pub fn lint_sources(
    files: &[(String, String)],
    registry: &BTreeMap<String, usize>,
    allows: &[Allow],
    locks: &LockRegistry,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut lock_fields: Vec<String> = Vec::new();
    for (rel, src) in files {
        let (violations, sites) = lint_file(rel, src, allows);
        out.extend(violations);
        let (lock_violations, found) = locks::lint_locks_file(rel, src, allows, locks);
        out.extend(lock_violations);
        lock_fields.extend(found);
        if sites > 0 {
            counts.insert(rel.clone(), sites);
        }
    }
    for entry in &locks.locks {
        if !lock_fields.contains(&entry.field) {
            out.push(Violation {
                file: entry.file.clone(),
                line: 1,
                rule: "lock-registry",
                msg: format!(
                    "lock_registry.toml names `{}` but no such field exists (stale entry?)",
                    entry.field
                ),
            });
        }
    }
    for (rel, &found) in &counts {
        match registry.get(rel) {
            None => out.push(Violation {
                file: rel.clone(),
                line: 1,
                rule: "unsafe-registry",
                msg: format!("{found} unsafe site(s) but no entry in xtask/unsafe_registry.toml"),
            }),
            Some(&expected) if expected != found => out.push(Violation {
                file: rel.clone(),
                line: 1,
                rule: "unsafe-registry",
                msg: format!(
                    "unsafe_registry.toml records {expected} unsafe site(s), found {found}"
                ),
            }),
            Some(_) => {}
        }
    }
    for (rel, &expected) in registry {
        if !counts.contains_key(rel) {
            out.push(Violation {
                file: rel.clone(),
                line: 1,
                rule: "unsafe-registry",
                msg: format!(
                    "unsafe_registry.toml records {expected} unsafe site(s), found 0 (stale entry?)"
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Count unsafe sites per file (the `--counts` helper for updating the
/// registry).
pub fn unsafe_counts(files: &[(String, String)]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for (rel, src) in files {
        let (_, sites) = lint_file(rel, src, &[]);
        if sites > 0 {
            counts.insert(rel.clone(), sites);
        }
    }
    counts
}

// ---------------------------------------------------------------------
// Config loading: a hand-rolled parser for the tiny TOML subset the two
// config files use (`[table]` / `[[array-of-tables]]` headers and
// `key = "string" | integer` pairs). No dependencies, loud errors.
// ---------------------------------------------------------------------

pub(crate) fn unquote(raw: &str, file: &str, lineno: usize) -> Result<String, String> {
    let t = raw.trim();
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
        Ok(t[1..t.len() - 1].to_string())
    } else {
        Err(format!(
            "{file}:{lineno}: expected a quoted string, got `{t}`"
        ))
    }
}

/// Strip a `#` comment (the configs never put `#` inside strings after
/// values we care about — keys and values are parsed before this for
/// quoted content).
pub(crate) fn strip_comment(line: &str) -> &str {
    // Respect `#` inside quotes.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `xtask/unsafe_registry.toml`: a single `[files]` table mapping
/// quoted workspace-relative paths to unsafe-site counts.
pub fn parse_registry(text: &str, file: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut map = BTreeMap::new();
    let mut in_files = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_files = line == "[files]";
            if !in_files {
                return Err(format!("{file}:{lineno}: unknown section `{line}`"));
            }
            continue;
        }
        if !in_files {
            return Err(format!("{file}:{lineno}: entry outside [files]"));
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("{file}:{lineno}: expected `\"path\" = count`"))?;
        let key = unquote(k, file, lineno)?;
        let count: usize = v
            .trim()
            .parse()
            .map_err(|_| format!("{file}:{lineno}: count must be an integer"))?;
        if map.insert(key.clone(), count).is_some() {
            return Err(format!("{file}:{lineno}: duplicate entry for `{key}`"));
        }
    }
    Ok(map)
}

/// Parse `xtask/lint_allow.toml`: `[[allow]]` entries with `rule`,
/// `reason`, and at least one of `path` / `contains`.
pub fn parse_allows(text: &str, file: &str) -> Result<Vec<Allow>, String> {
    let mut out: Vec<Allow> = Vec::new();
    let mut open = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            out.push(Allow {
                rule: String::new(),
                path: None,
                contains: None,
                reason: String::new(),
            });
            open = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("{file}:{lineno}: unknown section `{line}`"));
        }
        if !open {
            return Err(format!("{file}:{lineno}: entry outside [[allow]]"));
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("{file}:{lineno}: expected `key = \"value\"`"))?;
        let value = unquote(v, file, lineno)?;
        let Some(entry) = out.last_mut() else {
            return Err(format!("{file}:{lineno}: entry outside [[allow]]"));
        };
        match k.trim() {
            "rule" => entry.rule = value,
            "path" => entry.path = Some(value),
            "contains" => entry.contains = Some(value),
            "reason" => entry.reason = value,
            other => return Err(format!("{file}:{lineno}: unknown key `{other}`")),
        }
    }
    for (i, a) in out.iter().enumerate() {
        if a.rule.is_empty() {
            return Err(format!("{file}: [[allow]] #{} is missing `rule`", i + 1));
        }
        if a.reason.is_empty() {
            return Err(format!("{file}: [[allow]] #{} is missing `reason`", i + 1));
        }
        if a.path.is_none() && a.contains.is_none() {
            return Err(format!(
                "{file}: [[allow]] #{} needs `path` and/or `contains` to scope the grant",
                i + 1
            ));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Workspace walking + the end-to-end entry point.
// ---------------------------------------------------------------------

/// Collect every workspace `.rs` file, workspace-relative with forward
/// slashes, skipping build output, VCS metadata, and the linter's own
/// negative fixtures (those are *supposed* to fail).
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Read every workspace source file into `(relative_path, contents)`
/// pairs.
pub fn read_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        files.push((rel, src));
    }
    Ok(files)
}

/// End-to-end lint of the workspace rooted at `root`: loads the registry
/// and allowlist from `root/xtask/`, walks the sources, returns the
/// findings.
pub fn run_lint(root: &Path) -> Result<Vec<Violation>, String> {
    let reg_path = root.join("xtask/unsafe_registry.toml");
    let allow_path = root.join("xtask/lint_allow.toml");
    let lock_path = root.join("xtask/lock_registry.toml");
    let reg_text = std::fs::read_to_string(&reg_path)
        .map_err(|e| format!("read {}: {e}", reg_path.display()))?;
    let allow_text = std::fs::read_to_string(&allow_path)
        .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
    let lock_text = std::fs::read_to_string(&lock_path)
        .map_err(|e| format!("read {}: {e}", lock_path.display()))?;
    let registry = parse_registry(&reg_text, "xtask/unsafe_registry.toml")?;
    let allows = parse_allows(&allow_text, "xtask/lint_allow.toml")?;
    let locks = parse_lock_registry(&lock_text, "xtask/lock_registry.toml")?;
    let files = read_sources(root)?;
    Ok(lint_sources(&files, &registry, &allows, &locks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_comments_and_strings() {
        let src = "let x = \"unsafe Ordering::Relaxed\"; // unsafe here\nlet c = 'u';\n";
        let masked = mask_source(src);
        assert!(!masked.contains("unsafe"));
        assert!(!masked.contains("Relaxed"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_keeps_lifetimes_and_raw_strings_balanced() {
        let src = "fn f<'a>(s: &'a str) -> &'a str { s }\nlet r = r#\"unsafe \"#;\n";
        let masked = mask_source(src);
        assert!(masked.contains("<'a>"));
        assert!(!masked.contains("unsafe"));
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_a_site() {
        let src = "struct J { run: unsafe fn(*const (), usize) }\n";
        let (v, sites) = lint_file("crates/x/src/lib.rs", src, &[]);
        assert_eq!(sites, 0);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unsafe_block_needs_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let (v, sites) = lint_file("crates/x/src/lib.rs", bad, &[]);
        assert_eq!(sites, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-safety");

        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        let (v, sites) = lint_file("crates/x/src/lib.rs", good, &[]);
        assert_eq!(sites, 1);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cmp_ordering_is_exempt_atomic_is_not() {
        let cmp =
            "fn f(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }\nlet o = Ordering::Less;\n";
        let (v, _) = lint_file("crates/x/src/lib.rs", cmp, &[]);
        assert!(v.is_empty(), "{v:?}");

        let atomic = "fn g(a: &AtomicUsize) -> usize { a.load(Ordering::Relaxed) }\n";
        let (v, _) = lint_file("crates/x/src/lib.rs", atomic, &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ordering-justified");

        let justified = "// ORDERING: Relaxed — monotonic counter, no synchronization.\nfn g(a: &AtomicUsize) -> usize { a.load(Ordering::Relaxed) }\n";
        let (v, _) = lint_file("crates/x/src/lib.rs", justified, &[]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_flagged_in_lib_code_but_not_in_cfg_test() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn g(v: Option<u32>) -> u32 { v.unwrap() }\n}\n";
        let (v, _) = lint_file("crates/x/src/lib.rs", src, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn inline_allow_and_grants_suppress() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() } // ALLOW(no-unwrap): infallible by construction\n";
        let (v, _) = lint_file("crates/x/src/lib.rs", src, &[]);
        assert!(v.is_empty(), "{v:?}");

        let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n";
        let allows = vec![Allow {
            rule: "no-unwrap".to_string(),
            path: None,
            contains: Some(".lock().unwrap()".to_string()),
            reason: "mutex poisoning propagates a sibling panic".to_string(),
        }];
        let (v, _) = lint_file("crates/x/src/lib.rs", src, &allows);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn banned_patterns_fire() {
        let src = "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap(); }\n";
        let (v, _) = lint_file("tests/x.rs", src, &[]);
        assert!(v.iter().any(|v| v.rule == "no-partial-cmp-unwrap"));

        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let (v, _) = lint_file("crates/x/src/lib.rs", src, &[]);
        assert!(v.iter().any(|v| v.rule == "no-thread-spawn"));
        let (v, _) = lint_file("crates/core/src/parallel.rs", src, &[]);
        assert!(!v.iter().any(|v| v.rule == "no-thread-spawn"));
    }

    #[test]
    fn registry_mismatches_are_reported() {
        let files = vec![(
            "crates/x/src/lib.rs".to_string(),
            "// SAFETY: p valid.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n".to_string(),
        )];
        let locks = LockRegistry::default();
        // Unregistered.
        let v = lint_sources(&files, &BTreeMap::new(), &[], &locks);
        assert!(v.iter().any(|v| v.rule == "unsafe-registry"));
        // Wrong count.
        let mut reg = BTreeMap::new();
        reg.insert("crates/x/src/lib.rs".to_string(), 3usize);
        let v = lint_sources(&files, &reg, &[], &locks);
        assert!(v.iter().any(|v| v.rule == "unsafe-registry"));
        // Exact.
        let mut reg = BTreeMap::new();
        reg.insert("crates/x/src/lib.rs".to_string(), 1usize);
        let v = lint_sources(&files, &reg, &[], &locks);
        assert!(v.is_empty(), "{v:?}");
        // Stale entry for a file with no unsafe.
        let clean = vec![("crates/y/src/lib.rs".to_string(), "fn f() {}\n".to_string())];
        let v = lint_sources(&clean, &reg, &[], &locks);
        assert!(v.iter().any(|v| v.rule == "unsafe-registry"));
    }

    #[test]
    fn toml_subset_parsers_round_trip() {
        let reg = parse_registry(
            "# registry\n[files]\n\"a/b.rs\" = 3\n\"c.rs\" = 1\n",
            "r.toml",
        )
        .expect("registry parses");
        assert_eq!(reg.get("a/b.rs"), Some(&3));
        assert!(parse_registry("[nope]\n", "r.toml").is_err());
        assert!(parse_registry("[files]\n\"a\" = x\n", "r.toml").is_err());

        let allows = parse_allows(
            "[[allow]]\nrule = \"no-unwrap\"\ncontains = \".lock().unwrap()\"\nreason = \"poisoning\"\n",
            "a.toml",
        )
        .expect("allows parse");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "no-unwrap");
        assert!(parse_allows("[[allow]]\nrule = \"x\"\n", "a.toml").is_err());
        assert!(
            parse_allows("[[allow]]\nrule = \"x\"\nreason = \"y\"\n", "a.toml").is_err(),
            "grants must be scoped by path or contains"
        );
    }
}
