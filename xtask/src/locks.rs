//! Lock-discipline analysis (ISSUE 8): the three rule families layered
//! on top of the masked-source scanner in `lib.rs`.
//!
//! * **Guard-scope tracker** — an intra-procedural, brace- and
//!   statement-aware pass that finds every guard-producing call
//!   (`.lock()`, plus `.read()`/`.write()` on registered `RwLock`
//!   fields) and computes the live scope of the resulting binding:
//!   a `let`-bound guard lives to the end of its enclosing block (or an
//!   explicit `drop(guard)`); a temporary in expression position lives
//!   to the end of its statement. Within a live scope the pass flags:
//!   - `guard-across-blocking` — calls registered as blocking in
//!     `lock_registry.toml` (`[[blocking]]`: the pool fan-outs
//!     `WorkerPool::run` / `FlushPipeline::run_query` and friends). A
//!     blocking entry may name `unless_guard`: the one lock that *is*
//!     the call's own serialization point (the pool mutex across
//!     `WorkerPool::run`) is exempt, every foreign guard is not.
//!   - `guard-across-wait` — a `Condvar` wait that does not consume
//!     this guard (waiting on lock A while still holding lock B).
//!   - `lock-order` — acquiring another registered lock whose level
//!     does not *strictly descend* from the held one.
//!   - `lock-consolidate` — re-acquiring the same registered lock
//!     several times in one function body: each re-acquisition observes
//!     torn intermediate state; consolidate into one guarded block (or
//!     annotate a deliberately split critical section).
//! * **Lock-order registry** — `xtask/lock_registry.toml` names every
//!   `Mutex`/`RwLock`/`Condvar`/`AtomicPtr` *field* in the workspace
//!   with an integer level (`lock-registry` fires on unregistered or
//!   stale fields; regenerate stubs with `cargo xtask lint --locks`),
//!   and every lock field needs an adjacent `// LOCK: <level> — <why>`
//!   comment whose level matches the registry (`lock-comment`),
//!   mirroring the `// ORDERING:` rule. Condvars carry the level of the
//!   mutex they gate and create no ordering edges of their own (a wait
//!   *releases* that mutex).
//! * **Poison-surface audit** — `panic!` / `.unwrap()` / `.expect(` /
//!   `[idx]` indexing inside a guard's live scope is flagged
//!   (`poison-surface`) unless granted in `lint_allow.toml` or via
//!   `// ALLOW(poison): reason` — the static complement of the sched
//!   harness's panic-propagation checks. The `.unwrap()`/`.expect(`
//!   chained directly onto the guard-producing call is exempt: that is
//!   the workspace's sanctioned poison *propagation*, already governed
//!   by the `no-unwrap` grants.
//!
//! Like the rest of the linter this is a token-level policy check over
//! masked source, not a borrow checker: closures count as part of their
//! enclosing function, guards returned from functions are not tracked
//! across calls, and tuple-struct lock fields are invisible (none
//! exist; named fields are the workspace idiom). Miri, the sanitizers,
//! and `core::parallel::sched` own the semantic side.

use crate::{
    grant_allowed, inline_allowed, is_ident, mask_source, test_region_lines, word_occurrences,
    Allow, Violation,
};

/// The lock-shaped field types the registry must cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
    Condvar,
    AtomicPtr,
}

impl LockKind {
    /// The registry's `kind = "..."` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            LockKind::Mutex => "mutex",
            LockKind::RwLock => "rwlock",
            LockKind::Condvar => "condvar",
            LockKind::AtomicPtr => "atomicptr",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "mutex" => Some(LockKind::Mutex),
            "rwlock" => Some(LockKind::RwLock),
            "condvar" => Some(LockKind::Condvar),
            "atomicptr" => Some(LockKind::AtomicPtr),
            _ => None,
        }
    }

    /// The type word the field scanner matches.
    fn type_word(self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
            LockKind::Condvar => "Condvar",
            LockKind::AtomicPtr => "AtomicPtr",
        }
    }

    const ALL: [LockKind; 4] = [
        LockKind::Mutex,
        LockKind::RwLock,
        LockKind::Condvar,
        LockKind::AtomicPtr,
    ];
}

/// One `[[lock]]` entry of `xtask/lock_registry.toml`.
#[derive(Debug, Clone)]
pub struct LockEntry {
    /// `Struct.field` key.
    pub field: String,
    /// Workspace-relative file declaring the field.
    pub file: String,
    pub kind: LockKind,
    /// Ordering level: nested acquisitions must descend strictly
    /// (acquire 50, then 40, then 15 — never back up).
    pub level: i64,
}

impl LockEntry {
    /// The bare field name (`pool` of `FlushPipeline.pool`) —
    /// what an acquisition site's receiver chain ends in.
    pub fn base(&self) -> &str {
        self.field.rsplit('.').next().unwrap_or(&self.field)
    }
}

/// One `[[blocking]]` entry: a call needle that parks the caller (pool
/// fan-out, pipeline drain) and must never run under a foreign guard.
#[derive(Debug, Clone)]
pub struct BlockingCall {
    /// Substring needle, e.g. `".run("` or `"run_query("`.
    pub call: String,
    /// Guard base name exempt from this needle: the lock that *is* the
    /// call's serialization point.
    pub unless_guard: Option<String>,
    pub reason: String,
}

/// The parsed `xtask/lock_registry.toml`.
#[derive(Debug, Clone, Default)]
pub struct LockRegistry {
    pub locks: Vec<LockEntry>,
    pub blocking: Vec<BlockingCall>,
}

impl LockRegistry {
    /// Maps an acquisition site to a registry entry: the receiver base
    /// name must match an entry's field name, preferring an entry
    /// declared in the same file; an ambiguous cross-file name maps to
    /// nothing (no finding beats a wrong finding in a policy check).
    fn entry_for(&self, rel: &str, base: &str) -> Option<&LockEntry> {
        let all: Vec<&LockEntry> = self.locks.iter().filter(|e| e.base() == base).collect();
        if let Some(same_file) = all.iter().find(|e| e.file == rel) {
            return Some(same_file);
        }
        match all.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }
}

/// Parse `xtask/lock_registry.toml`: `[[lock]]` entries (`field`,
/// `file`, `kind`, `level`) plus `[[blocking]]` entries (`call`,
/// optional `unless_guard`, `reason`).
pub fn parse_lock_registry(text: &str, file: &str) -> Result<LockRegistry, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Lock,
        Blocking,
    }
    let mut reg = LockRegistry::default();
    let mut section = Section::None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = crate::strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "[[lock]]" => {
                reg.locks.push(LockEntry {
                    field: String::new(),
                    file: String::new(),
                    kind: LockKind::Mutex,
                    level: i64::MIN,
                });
                section = Section::Lock;
                continue;
            }
            "[[blocking]]" => {
                reg.blocking.push(BlockingCall {
                    call: String::new(),
                    unless_guard: None,
                    reason: String::new(),
                });
                section = Section::Blocking;
                continue;
            }
            _ if line.starts_with('[') => {
                return Err(format!("{file}:{lineno}: unknown section `{line}`"));
            }
            _ => {}
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("{file}:{lineno}: expected `key = value`"))?;
        let key = k.trim();
        match section {
            Section::None => {
                return Err(format!(
                    "{file}:{lineno}: entry outside [[lock]]/[[blocking]]"
                ))
            }
            Section::Lock => {
                let entry = reg.locks.last_mut().expect("section implies an entry");
                match key {
                    "field" => entry.field = crate::unquote(v, file, lineno)?,
                    "file" => entry.file = crate::unquote(v, file, lineno)?,
                    "kind" => {
                        let s = crate::unquote(v, file, lineno)?;
                        entry.kind = LockKind::parse(&s).ok_or_else(|| {
                            format!("{file}:{lineno}: unknown lock kind `{s}` (mutex | rwlock | condvar | atomicptr)")
                        })?;
                    }
                    "level" => {
                        entry.level = v
                            .trim()
                            .parse()
                            .map_err(|_| format!("{file}:{lineno}: level must be an integer"))?;
                    }
                    other => return Err(format!("{file}:{lineno}: unknown key `{other}`")),
                }
            }
            Section::Blocking => {
                let entry = reg.blocking.last_mut().expect("section implies an entry");
                match key {
                    "call" => entry.call = crate::unquote(v, file, lineno)?,
                    "unless_guard" => entry.unless_guard = Some(crate::unquote(v, file, lineno)?),
                    "reason" => entry.reason = crate::unquote(v, file, lineno)?,
                    other => return Err(format!("{file}:{lineno}: unknown key `{other}`")),
                }
            }
        }
    }
    for (i, e) in reg.locks.iter().enumerate() {
        if e.field.is_empty() || !e.field.contains('.') {
            return Err(format!(
                "{file}: [[lock]] #{} needs `field = \"Struct.name\"`",
                i + 1
            ));
        }
        if e.file.is_empty() {
            return Err(format!("{file}: [[lock]] #{} is missing `file`", i + 1));
        }
        if e.level == i64::MIN {
            return Err(format!("{file}: [[lock]] #{} is missing `level`", i + 1));
        }
    }
    for (i, b) in reg.blocking.iter().enumerate() {
        if b.call.is_empty() {
            return Err(format!("{file}: [[blocking]] #{} is missing `call`", i + 1));
        }
        if b.reason.is_empty() {
            return Err(format!(
                "{file}: [[blocking]] #{} is missing `reason`",
                i + 1
            ));
        }
    }
    Ok(reg)
}

/// A lock-shaped struct field found in masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockField {
    /// 0-based line of the field declaration.
    pub line: usize,
    pub strukt: String,
    pub name: String,
    pub kind: LockKind,
}

impl LockField {
    /// The registry key (`Struct.name`).
    pub fn key(&self) -> String {
        format!("{}.{}", self.strukt, self.name)
    }
}

/// Finds every named struct field whose type mentions a lock-shaped
/// type (`Mutex<`, `RwLock<`, `Condvar`, `AtomicPtr<`). Token-level:
/// walks each `struct Name { ... }` body and matches the type words at
/// field depth. Tuple structs and locals are out of scope by design.
pub fn find_lock_fields(masked: &str) -> Vec<LockField> {
    let bytes = masked.as_bytes();
    let line_of = |pos: usize| bytes[..pos].iter().filter(|&&b| b == b'\n').count();
    let mut out: Vec<LockField> = Vec::new();
    for spos in word_occurrences(masked, "struct") {
        // Struct name.
        let mut i = spos + "struct".len();
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident(bytes[i] as char) {
            i += 1;
        }
        if i == name_start {
            continue; // `struct` in some odd position
        }
        let strukt = masked[name_start..i].to_string();
        // Find the body `{`, skipping generics (`->` inside Fn bounds
        // must not close an angle bracket).
        let mut angle = 0isize;
        let body_open = loop {
            if i >= bytes.len() {
                break None;
            }
            match bytes[i] {
                b'<' => angle += 1,
                b'>' if i > 0 && bytes[i - 1] != b'-' => angle -= 1,
                b'{' if angle <= 0 => break Some(i),
                b';' | b'(' if angle <= 0 => break None, // unit / tuple struct
                _ => {}
            }
            i += 1;
        };
        let Some(open) = body_open else { continue };
        // Brace-balance to the struct body's close.
        let mut depth = 0isize;
        let mut close = open;
        while close < bytes.len() {
            match bytes[close] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        let body = &masked[open..close.min(masked.len())];
        for kind in LockKind::ALL {
            for occ in word_occurrences(body, kind.type_word()) {
                // Field depth only (a struct body has no nested braces
                // except attribute-free edge cases; require depth 1).
                let rel_depth = body[..occ].bytes().fold(0isize, |d, b| {
                    d + i64::from(b == b'{') as isize - i64::from(b == b'}') as isize
                });
                if rel_depth != 1 {
                    continue;
                }
                // Walk back to the previous field boundary.
                let mut j = occ;
                while j > 0 {
                    let b = body.as_bytes()[j - 1];
                    if b == b',' || b == b'{' {
                        break;
                    }
                    j -= 1;
                }
                let segment = &body[j..occ];
                // The field name is the last identifier before the first
                // single (non-path) colon of the segment.
                let seg = segment.as_bytes();
                let mut colon = None;
                let mut c = 0usize;
                while c < seg.len() {
                    if seg[c] == b':' {
                        if c + 1 < seg.len() && seg[c + 1] == b':' {
                            c += 2;
                            continue;
                        }
                        colon = Some(c);
                        break;
                    }
                    c += 1;
                }
                let Some(colon) = colon else { continue };
                let before = segment[..colon].trim_end();
                let name_end = before.len();
                let mut name_begin = name_end;
                while name_begin > 0 && is_ident(before.as_bytes()[name_begin - 1] as char) {
                    name_begin -= 1;
                }
                if name_begin == name_end {
                    continue;
                }
                let fname = before[name_begin..].to_string();
                let field = LockField {
                    line: line_of(open + j + (segment.len() - segment.trim_start().len())),
                    strukt: strukt.clone(),
                    name: fname,
                    kind,
                };
                if !out
                    .iter()
                    .any(|f| f.strukt == field.strukt && f.name == field.name)
                {
                    out.push(field);
                }
            }
        }
    }
    out
}

/// One guard the scope tracker found.
#[derive(Debug)]
struct Guard {
    /// Byte offset of the producing `.lock()` / `.read()` / `.write()`.
    pos: usize,
    /// End of the producing chain (past the sanctioned
    /// `.unwrap()`/`.expect(..)` poison propagation).
    producer_end: usize,
    /// Receiver base name (`pool` of `self.pool.lock()`).
    base: String,
    /// `let`-binding name, if any (`None` = expression temporary).
    binding: Option<String>,
    /// Exclusive end of the guard's live scope.
    scope_end: usize,
}

const WAIT_NEEDLES: [&str; 3] = [".wait(", ".wait_timeout(", ".wait_while("];

/// The identifier immediately before the `.` opening the method call at
/// `dot` (the receiver chain's last segment).
fn base_before(masked: &str, dot: usize) -> String {
    let bytes = masked.as_bytes();
    let mut j = dot;
    while j > 0 && is_ident(bytes[j - 1] as char) {
        j -= 1;
    }
    masked[j..dot].to_string()
}

/// Backward scan to the start of the statement containing `pos`:
/// the position just past the previous `;`, `{`, or `}` at brace
/// balance zero (closures and blocks inside the statement are skipped).
fn stmt_start(masked: &str, pos: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0isize;
    let mut i = pos;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b'}' | b')' | b']' => depth += 1,
            b'{' if depth == 0 => return i + 1,
            b'{' | b'(' | b'[' => depth -= 1,
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
    }
    0
}

/// Forward scan to the end of the statement containing `pos`: the `;`
/// at bracket balance zero, or the close of the enclosing block/call if
/// the expression is in tail position.
fn stmt_end(masked: &str, pos: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0isize;
    let mut i = pos;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            b';' | b',' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Forward scan from `pos` to the close of the enclosing block (the
/// first unmatched `}`).
fn block_end(masked: &str, pos: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0isize;
    let mut i = pos;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// First explicit `drop(name)` between `from` and `to`, if any — an
/// early end to a `let`-bound guard's scope.
fn find_drop_of(masked: &str, name: &str, from: usize, to: usize) -> Option<usize> {
    let region = &masked[from..to.min(masked.len())];
    for occ in word_occurrences(region, "drop") {
        let rest = region[occ + "drop".len()..].trim_start();
        let Some(args) = rest.strip_prefix('(') else {
            continue;
        };
        let inner: String = args
            .chars()
            .take_while(|&c| c != ')')
            .filter(|c| !c.is_whitespace())
            .collect();
        if inner == name {
            return Some(from + occ);
        }
    }
    None
}

/// The matching `)` for the `(` at `open`.
fn paren_close(masked: &str, open: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0isize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Function bodies of the masked source (start and end byte offsets),
/// for the per-function `lock-consolidate` grouping. Closures count as
/// part of their enclosing `fn`.
fn fn_bodies(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for fpos in word_occurrences(masked, "fn") {
        // Skip the signature to its body `{`; a `;` first means a trait
        // method declaration or an `extern` item — no body.
        let mut depth = 0isize;
        let mut i = fpos + "fn".len();
        let open = loop {
            if i >= bytes.len() {
                break None;
            }
            match bytes[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => break Some(i),
                b';' if depth == 0 => break None,
                _ => {}
            }
            i += 1;
        };
        if let Some(open) = open {
            out.push((open, block_end(masked, open + 1)));
        }
    }
    out
}

/// The innermost function body containing `pos`.
fn innermost_fn(bodies: &[(usize, usize)], pos: usize) -> Option<usize> {
    bodies
        .iter()
        .enumerate()
        .filter(|(_, &(s, e))| s <= pos && pos < e)
        .min_by_key(|(_, &(s, e))| e - s)
        .map(|(i, _)| i)
}

/// Extracts a `// LOCK: <level> — <why>` annotation on the field's line
/// or in the contiguous comment/attribute block above it, returning the
/// level. Mirrors the `ORDERING:` adjacency rule.
fn lock_comment_level(orig_lines: &[&str], line_idx: usize) -> Option<i64> {
    let parse = |t: &str| -> Option<i64> {
        let after = &t[t.find("LOCK:")? + "LOCK:".len()..];
        let trimmed = after.trim_start();
        let digits: String = trimmed
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '-')
            .collect();
        digits.parse().ok()
    };
    if let Some(v) = parse(orig_lines[line_idx]) {
        return Some(v);
    }
    let mut l = line_idx;
    while l > 0 {
        l -= 1;
        let t = orig_lines[l].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") || t.is_empty() {
            if let Some(v) = parse(t) {
                return Some(v);
            }
            continue;
        }
        return None;
    }
    None
}

/// Collects the guards of one file: producers, bindings, scopes.
fn find_guards(masked: &str, rel: &str, reg: &LockRegistry) -> Vec<Guard> {
    let mut guards = Vec::new();
    let mut producers: Vec<(usize, usize)> = Vec::new(); // (pos, len)
    for (pos, m) in masked.match_indices(".lock()") {
        producers.push((pos, m.len()));
    }
    for needle in [".read()", ".write()"] {
        for (pos, m) in masked.match_indices(needle) {
            // Only guard-producing when the receiver is a registered
            // RwLock field — `.read()`/`.write()` are common io names.
            let base = base_before(masked, pos);
            if reg
                .entry_for(rel, &base)
                .is_some_and(|e| e.kind == LockKind::RwLock)
            {
                producers.push((pos, m.len()));
            }
        }
    }
    producers.sort_unstable();
    for (pos, len) in producers {
        let base = base_before(masked, pos);
        // Skip past the chained poison propagation (`.unwrap()` /
        // `.expect(..)`) — that chain is the producer, not the surface.
        let mut producer_end = pos + len;
        loop {
            let rest = &masked[producer_end..];
            if rest.starts_with(".unwrap()") {
                producer_end += ".unwrap()".len();
            } else if rest.starts_with(".expect(") {
                let open = producer_end + ".expect".len();
                producer_end = paren_close(masked, open) + 1;
            } else {
                break;
            }
        }
        let start = stmt_start(masked, pos);
        let stmt_text = masked[start..pos].trim_start();
        // A `let` binds the *guard* only when the initializer is the
        // producer chain itself and nothing more: `let g = m.lock()…;`.
        // `let x = *m.lock().unwrap();` or `let n = m.lock().unwrap()
        // .len();` copy a value out and drop the guard at the `;`.
        let binding = stmt_text.strip_prefix("let ").and_then(|after_let| {
            let after = after_let.trim_start();
            let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
            let end = after.find(|c: char| !is_ident(c)).unwrap_or(after.len());
            let name = &after[..end];
            let rest = after[end..].trim_start();
            let init = rest.strip_prefix('=')?.trim_start();
            let receiver_only = init
                .chars()
                .all(|c| is_ident(c) || c == '.' || c == ':' || c.is_whitespace());
            let chain_is_whole_init = masked[producer_end..].trim_start().starts_with(';');
            (receiver_only && chain_is_whole_init).then(|| name.to_string())
        });
        let scope_end = match &binding {
            Some(name) if !name.is_empty() => {
                let sem = stmt_end(masked, pos);
                let blk = block_end(masked, sem);
                find_drop_of(masked, name, sem, blk).unwrap_or(blk)
            }
            _ => stmt_end(masked, pos),
        };
        guards.push(Guard {
            pos,
            producer_end,
            base,
            binding: binding.filter(|b| !b.is_empty()),
            scope_end,
        });
    }
    guards
}

/// Runs the lock-discipline rules over one file. Returns the findings
/// plus the registry keys of the lock fields found (for the global
/// stale-entry cross-check in `lint_sources`).
pub fn lint_locks_file(
    rel: &str,
    src: &str,
    allows: &[Allow],
    reg: &LockRegistry,
) -> (Vec<Violation>, Vec<String>) {
    let masked = mask_source(src);
    let orig_lines: Vec<&str> = src.lines().collect();
    let test_lines = test_region_lines(&masked);
    let test_path = crate::is_test_path(rel);
    let bytes = masked.as_bytes();
    let line_of = |pos: usize| bytes[..pos].iter().filter(|&&b| b == b'\n').count();
    let mut out: Vec<Violation> = Vec::new();

    let push = |out: &mut Vec<Violation>, rule: &'static str, li: usize, msg: String| {
        let text = orig_lines.get(li).copied().unwrap_or("");
        let inline = inline_allowed(&orig_lines, li, rule)
            || (rule == "poison-surface" && inline_allowed(&orig_lines, li, "poison"));
        if inline || grant_allowed(allows, rule, rel, text) {
            return;
        }
        out.push(Violation {
            file: rel.to_string(),
            line: li + 1,
            rule,
            msg,
        });
    };

    // ---- lock-registry / lock-comment: field coverage ----
    let mut found_keys = Vec::new();
    if !test_path {
        for field in find_lock_fields(&masked) {
            if test_lines.get(field.line).copied().unwrap_or(false) {
                continue;
            }
            let key = field.key();
            match reg.locks.iter().find(|e| e.field == key) {
                None => push(
                    &mut out,
                    "lock-registry",
                    field.line,
                    format!(
                        "{} field `{key}` is not in xtask/lock_registry.toml \
                         (regenerate stubs: cargo xtask lint --locks)",
                        field.kind.as_str()
                    ),
                ),
                Some(entry) => {
                    if entry.file != rel {
                        push(
                            &mut out,
                            "lock-registry",
                            field.line,
                            format!(
                                "`{key}` is registered under `{}`, found in `{rel}`",
                                entry.file
                            ),
                        );
                    }
                    match lock_comment_level(&orig_lines, field.line) {
                        None => push(
                            &mut out,
                            "lock-comment",
                            field.line,
                            format!(
                                "lock field `{key}` needs an adjacent \
                                 `// LOCK: {} — <why>` comment",
                                entry.level
                            ),
                        ),
                        Some(level) if level != entry.level => push(
                            &mut out,
                            "lock-comment",
                            field.line,
                            format!(
                                "`// LOCK: {level}` disagrees with the registry \
                                 level {} for `{key}`",
                                entry.level
                            ),
                        ),
                        Some(_) => {}
                    }
                }
            }
            found_keys.push(key);
        }
    }

    // ---- guard-scope rules ----
    let guards = find_guards(&masked, rel, reg);
    let bodies = fn_bodies(&masked);

    // Byte ranges whose `.unwrap()`/`.expect(` are sanctioned poison
    // *propagation*, not new surface: the chain on a guard producer and
    // the chain on a `Condvar` wait (both return `LockResult`; the
    // unwrap re-raises a sibling panic, governed by `no-unwrap` grants).
    let mut propagation: Vec<(usize, usize)> =
        guards.iter().map(|g| (g.pos, g.producer_end)).collect();
    for needle in WAIT_NEEDLES {
        for (occ, _) in masked.match_indices(needle) {
            let open = occ + needle.len() - 1;
            let mut end = paren_close(&masked, open) + 1;
            loop {
                let rest = &masked[end.min(masked.len())..];
                if rest.starts_with(".unwrap()") {
                    end += ".unwrap()".len();
                } else if rest.starts_with(".expect(") {
                    end = paren_close(&masked, end + ".expect".len()) + 1;
                } else {
                    break;
                }
            }
            propagation.push((occ, end));
        }
    }

    // lock-consolidate: repeated same-registered-lock acquisitions in
    // one function body (skipped for tests: repeated acquisition is the
    // natural shape of assertions).
    if !test_path {
        use std::collections::BTreeMap;
        let mut per_fn: BTreeMap<(usize, String), Vec<usize>> = BTreeMap::new();
        for g in &guards {
            let li = line_of(g.pos);
            if test_lines.get(li).copied().unwrap_or(false) {
                continue;
            }
            if let (Some(entry), Some(f)) =
                (reg.entry_for(rel, &g.base), innermost_fn(&bodies, g.pos))
            {
                per_fn
                    .entry((f, entry.field.clone()))
                    .or_default()
                    .push(g.pos);
            }
        }
        for ((_, field), positions) in per_fn {
            for &pos in positions.iter().skip(1) {
                push(
                    &mut out,
                    "lock-consolidate",
                    line_of(pos),
                    format!(
                        "`{field}` acquired {} times in one function — each \
                         re-acquisition observes torn intermediate state; \
                         consolidate into a single guarded block",
                        positions.len()
                    ),
                );
            }
        }
    }

    for g in &guards {
        let region_start = g.producer_end;
        let region_end = g.scope_end.min(masked.len());
        if region_start >= region_end {
            continue;
        }
        let region = &masked[region_start..region_end];
        let held = reg.entry_for(rel, &g.base);

        // guard-across-blocking.
        for b in &reg.blocking {
            if b.unless_guard.as_deref() == Some(g.base.as_str()) {
                continue;
            }
            for (occ, _) in region.match_indices(b.call.as_str()) {
                let abs = region_start + occ;
                if b.call.chars().next().is_some_and(is_ident)
                    && abs > 0
                    && is_ident(bytes[abs - 1] as char)
                {
                    continue; // mid-identifier, not this call
                }
                push(
                    &mut out,
                    "guard-across-blocking",
                    line_of(abs),
                    format!(
                        "guard of `{}` held across blocking call `{}` — {}",
                        g.base,
                        b.call.trim_matches(['.', '(']),
                        b.reason
                    ),
                );
            }
        }

        // guard-across-wait: a Condvar wait that does not consume this
        // guard keeps it held while the caller sleeps.
        for needle in WAIT_NEEDLES {
            for (occ, _) in region.match_indices(needle) {
                let abs = region_start + occ;
                let open = abs + needle.len() - 1;
                let close = paren_close(&masked, open);
                let args = &masked[open..=close.min(masked.len() - 1)];
                let consumed = match &g.binding {
                    Some(name) => !word_occurrences(args, name).is_empty(),
                    // A temporary passed straight into the wait call is
                    // consumed by it.
                    None => g.pos > open && g.pos < close,
                };
                if !consumed {
                    push(
                        &mut out,
                        "guard-across-wait",
                        line_of(abs),
                        format!(
                            "guard of `{}` held across a Condvar wait that does \
                             not consume it — the wait parks with `{}` still locked",
                            g.base, g.base
                        ),
                    );
                }
            }
        }

        // lock-order: nested acquisition must descend strictly in level.
        if let Some(outer) = held {
            for inner in &guards {
                if std::ptr::eq(inner, g) || inner.pos < region_start || inner.pos >= region_end {
                    continue;
                }
                if let Some(ie) = reg.entry_for(rel, &inner.base) {
                    if ie.kind == LockKind::Condvar {
                        continue;
                    }
                    if ie.level >= outer.level {
                        push(
                            &mut out,
                            "lock-order",
                            line_of(inner.pos),
                            format!(
                                "`{}` (level {}) acquired while holding `{}` \
                                 (level {}) — nested acquisitions must descend \
                                 strictly in registry level",
                                ie.field, ie.level, outer.field, outer.level
                            ),
                        );
                    }
                }
            }
        }

        // poison-surface (library code only, like no-unwrap).
        if !test_path {
            let poison_exempt = |li: usize| test_lines.get(li).copied().unwrap_or(false);
            for needle in ["panic!", ".unwrap()", ".expect("] {
                for (occ, _) in region.match_indices(needle) {
                    let abs = region_start + occ;
                    if propagation.iter().any(|&(s, e)| s <= abs && abs < e) {
                        continue;
                    }
                    let li = line_of(abs);
                    if poison_exempt(li) {
                        continue;
                    }
                    push(
                        &mut out,
                        "poison-surface",
                        li,
                        format!(
                            "`{}` inside the live scope of guard `{}` — a panic \
                             here poisons the lock for every other thread; \
                             handle it, move it out of the critical section, or \
                             grant `// ALLOW(poison): reason`",
                            needle.trim_end_matches('('),
                            g.base
                        ),
                    );
                }
            }
            // `[idx]` indexing: `[` directly after an identifier, `)`,
            // or `]` is an index expression (types/attributes are not).
            let rb = region.as_bytes();
            for (occ, b) in rb.iter().enumerate() {
                if *b != b'[' || occ == 0 {
                    continue;
                }
                let prev = rb[occ - 1] as char;
                if !(is_ident(prev) || prev == ')' || prev == ']') {
                    continue;
                }
                let li = line_of(region_start + occ);
                if poison_exempt(li) {
                    continue;
                }
                push(
                    &mut out,
                    "poison-surface",
                    li,
                    format!(
                        "`[idx]` indexing inside the live scope of guard `{}` — \
                         an out-of-bounds panic poisons the lock; bounds-check, \
                         move it out, or grant `// ALLOW(poison): reason`",
                        g.base
                    ),
                );
            }
        }
    }

    (out, found_keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(toml: &str) -> LockRegistry {
        parse_lock_registry(toml, "test.toml").expect("registry parses")
    }

    const TWO_LOCKS: &str = r#"
[[lock]]
field = "W.high"
file = "crates/x/src/lib.rs"
kind = "mutex"
level = 50
[[lock]]
field = "W.low"
file = "crates/x/src/lib.rs"
kind = "mutex"
level = 10
[[blocking]]
call = "run_query("
unless_guard = "low"
reason = "fans out over the pool"
"#;

    fn lint(src: &str, registry: &LockRegistry) -> Vec<Violation> {
        let (v, _) = lint_locks_file("crates/x/src/lib.rs", src, &[], registry);
        v
    }

    #[test]
    fn registry_parser_round_trips() {
        let r = reg(TWO_LOCKS);
        assert_eq!(r.locks.len(), 2);
        assert_eq!(r.locks[0].base(), "high");
        assert_eq!(r.locks[0].level, 50);
        assert_eq!(r.blocking.len(), 1);
        assert_eq!(r.blocking[0].unless_guard.as_deref(), Some("low"));
        assert!(parse_lock_registry("[[lock]]\nfield = \"X.a\"\n", "t").is_err());
        assert!(parse_lock_registry(
            "[[lock]]\nfield = \"noDot\"\nfile = \"f\"\nlevel = 1\n",
            "t"
        )
        .is_err());
        assert!(parse_lock_registry("[nope]\n", "t").is_err());
    }

    #[test]
    fn lock_fields_are_discovered_with_struct_context() {
        let masked = mask_source(
            "pub struct A<T> { pub m: std::sync::Mutex<T>, cv: Condvar }\n\
             struct B(Mutex<u32>);\n\
             fn f() { let local: Mutex<u32> = Mutex::new(0); }\n\
             struct C { ptr: std::sync::atomic::AtomicPtr<u8> }\n",
        );
        let fields = find_lock_fields(&masked);
        let keys: Vec<String> = fields.iter().map(LockField::key).collect();
        assert!(keys.contains(&"A.m".to_string()), "{keys:?}");
        assert!(keys.contains(&"A.cv".to_string()), "{keys:?}");
        assert!(keys.contains(&"C.ptr".to_string()), "{keys:?}");
        assert_eq!(
            keys.len(),
            3,
            "tuple structs and locals are not fields: {keys:?}"
        );
    }

    #[test]
    fn unregistered_field_and_missing_comment_fire() {
        let src = "pub struct W { high: std::sync::Mutex<u32> }\n";
        let v = lint(src, &LockRegistry::default());
        assert!(v.iter().any(|v| v.rule == "lock-registry"), "{v:?}");

        let v = lint(src, &reg(TWO_LOCKS));
        assert!(v.iter().any(|v| v.rule == "lock-comment"), "{v:?}");

        let good =
            "pub struct W {\n    // LOCK: 50 — outermost.\n    high: std::sync::Mutex<u32>,\n}\n";
        let v = lint(good, &reg(TWO_LOCKS));
        assert!(v.is_empty(), "{v:?}");

        let wrong =
            "pub struct W {\n    // LOCK: 7 — stale.\n    high: std::sync::Mutex<u32>,\n}\n";
        let v = lint(wrong, &reg(TWO_LOCKS));
        assert!(v.iter().any(|v| v.rule == "lock-comment"), "{v:?}");
    }

    #[test]
    fn nested_acquisition_must_descend() {
        let bad = "impl W { fn f(&self) {\n    let low = self.low.lock().unwrap();\n    let high = self.high.lock().unwrap();\n    drop(high); drop(low);\n} }\n";
        let v = lint(bad, &reg(TWO_LOCKS));
        assert!(v.iter().any(|v| v.rule == "lock-order"), "{v:?}");

        let good = "impl W { fn f(&self) {\n    let high = self.high.lock().unwrap();\n    let low = self.low.lock().unwrap();\n    drop(low); drop(high);\n} }\n";
        let v = lint(good, &reg(TWO_LOCKS));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn drop_ends_the_scope() {
        let src = "impl W { fn f(&self) {\n    let low = self.low.lock().unwrap();\n    drop(low);\n    let high = self.high.lock().unwrap();\n    drop(high);\n} }\n";
        let v = lint(src, &reg(TWO_LOCKS));
        assert!(v.is_empty(), "dropped guard must not order-check: {v:?}");
    }

    #[test]
    fn blocking_calls_and_the_self_lock_exemption() {
        let bad = "impl W { fn f(&self) {\n    let high = self.high.lock().unwrap();\n    self.run_query(1);\n    drop(high);\n} }\n";
        let v = lint(bad, &reg(TWO_LOCKS));
        assert!(v.iter().any(|v| v.rule == "guard-across-blocking"), "{v:?}");

        // `low` is the registered serialization point of run_query.
        let own = "impl W { fn f(&self) {\n    let low = self.low.lock().unwrap();\n    self.run_query(1);\n    drop(low);\n} }\n";
        let v = lint(own, &reg(TWO_LOCKS));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waits_must_consume_the_guard() {
        let toml = "[[lock]]\nfield = \"W.a\"\nfile = \"crates/x/src/lib.rs\"\nkind = \"mutex\"\nlevel = 50\n[[lock]]\nfield = \"W.b\"\nfile = \"crates/x/src/lib.rs\"\nkind = \"mutex\"\nlevel = 10\n";
        let r = reg(toml);
        let bad = "impl W { fn f(&self) {\n    let a = self.a.lock().unwrap();\n    let mut b = self.b.lock().unwrap();\n    b = self.cv.wait(b).unwrap();\n    drop(b); drop(a);\n} }\n";
        let v = lint(bad, &r);
        assert!(
            v.iter().any(|v| v.rule == "guard-across-wait"),
            "guard `a` held across the wait on `b`: {v:?}"
        );

        let good = "impl W { fn f(&self) {\n    let mut b = self.b.lock().unwrap();\n    b = self.cv.wait(b).unwrap();\n    drop(b);\n} }\n";
        let v = lint(good, &r);
        assert!(
            v.is_empty(),
            "a wait consuming its own guard is the idiom: {v:?}"
        );
    }

    #[test]
    fn poison_surface_in_guard_scope() {
        let r = reg(TWO_LOCKS);
        let bad = "impl W { fn f(&self, v: &[u32], i: usize) -> u32 {\n    let high = self.high.lock().unwrap();\n    let x = v[i];\n    let y = some().unwrap();\n    drop(high);\n    x + y\n} }\n";
        let v = lint(bad, &r);
        let n = v.iter().filter(|v| v.rule == "poison-surface").count();
        assert!(n >= 2, "indexing and unwrap under the guard: {v:?}");

        // The chained lock().unwrap() itself is sanctioned propagation.
        let ok = "impl W { fn f(&self) -> u32 {\n    *self.high.lock().unwrap()\n} }\n";
        let v = lint(ok, &r);
        assert!(v.is_empty(), "{v:?}");

        let allowed = "impl W { fn f(&self, v: &[u32], i: usize) -> u32 {\n    let high = self.high.lock().unwrap();\n    // ALLOW(poison): bounds proven by the caller.\n    let x = v[i];\n    drop(high);\n    x\n} }\n";
        let v = lint(allowed, &r);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn reacquisition_in_one_fn_is_flagged() {
        let r = reg(TWO_LOCKS);
        let bad = "impl W { fn stats(&self) -> (u32, u32) {\n    let a = *self.high.lock().unwrap();\n    let b = *self.high.lock().unwrap();\n    (a, b)\n} }\n";
        let v = lint(bad, &r);
        assert!(v.iter().any(|v| v.rule == "lock-consolidate"), "{v:?}");

        let two_fns = "impl W { fn a(&self) -> u32 { *self.high.lock().unwrap() }\n fn b(&self) -> u32 { *self.high.lock().unwrap() } }\n";
        let v = lint(two_fns, &r);
        assert!(v.is_empty(), "one acquisition per fn is fine: {v:?}");
    }

    #[test]
    fn temporaries_scope_to_their_statement() {
        let r = reg(TWO_LOCKS);
        // The guard temporary dies at the end of the statement; the
        // blocking call on the next line runs unguarded.
        let src = "impl W { fn f(&self) -> u32 {\n    let x = *self.high.lock().unwrap();\n    self.run_query(x);\n    x\n} }\n";
        let v = lint(src, &r);
        assert!(v.is_empty(), "{v:?}");
    }
}
