//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the concurrency-correctness linter (see `xtask/src/lib.rs`
//! for the rules). Wired as a cargo alias in `.cargo/config.toml`:
//!
//! ```text
//! cargo xtask lint            # lint the workspace, exit 1 on findings
//! cargo xtask lint --counts   # print per-file unsafe-site counts
//! cargo xtask lint --locks    # print lock_registry.toml stubs
//! ```

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(
            args.iter().any(|a| a == "--counts"),
            args.iter().any(|a| a == "--locks"),
        ),
        _ => {
            eprintln!("usage: cargo xtask lint [--counts | --locks]");
            ExitCode::FAILURE
        }
    }
}

fn lint(print_counts: bool, print_locks: bool) -> ExitCode {
    // The xtask crate lives one level under the workspace root.
    let Some(root) = Path::new(env!("CARGO_MANIFEST_DIR")).parent() else {
        eprintln!("xtask: cannot locate the workspace root");
        return ExitCode::FAILURE;
    };
    if print_counts || print_locks {
        let files = match xtask::read_sources(root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::FAILURE;
            }
        };
        if print_counts {
            println!("[files]");
            for (rel, count) in xtask::unsafe_counts(&files) {
                println!("\"{rel}\" = {count}");
            }
        }
        if print_locks {
            // Registry stubs for every lock-shaped field in library
            // code; existing registry levels carry over so the output
            // can replace lock_registry.toml wholesale.
            let existing = std::fs::read_to_string(root.join("xtask/lock_registry.toml"))
                .ok()
                .and_then(|t| xtask::parse_lock_registry(&t, "xtask/lock_registry.toml").ok())
                .unwrap_or_default();
            for (rel, src) in &files {
                if xtask::is_test_path(rel) {
                    continue;
                }
                let masked = xtask::mask_source(src);
                let test_lines = xtask::test_region_lines(&masked);
                for field in xtask::locks::find_lock_fields(&masked) {
                    if test_lines.get(field.line).copied().unwrap_or(false) {
                        continue;
                    }
                    let key = field.key();
                    let level = existing
                        .locks
                        .iter()
                        .find(|e| e.field == key)
                        .map(|e| e.level);
                    println!("[[lock]]");
                    println!("field = \"{key}\"");
                    println!("file = \"{rel}\"");
                    println!("kind = \"{}\"", field.kind.as_str());
                    match level {
                        Some(l) => println!("level = {l}"),
                        None => println!("level = 0 # TODO: assign an ordering level"),
                    }
                    println!();
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    match xtask::run_lint(root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} finding(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
