//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the concurrency-correctness linter (see `xtask/src/lib.rs`
//! for the rules). Wired as a cargo alias in `.cargo/config.toml`:
//!
//! ```text
//! cargo xtask lint            # lint the workspace, exit 1 on findings
//! cargo xtask lint --counts   # print per-file unsafe-site counts
//! ```

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--counts")),
        _ => {
            eprintln!("usage: cargo xtask lint [--counts]");
            ExitCode::FAILURE
        }
    }
}

fn lint(print_counts: bool) -> ExitCode {
    // The xtask crate lives one level under the workspace root.
    let Some(root) = Path::new(env!("CARGO_MANIFEST_DIR")).parent() else {
        eprintln!("xtask: cannot locate the workspace root");
        return ExitCode::FAILURE;
    };
    if print_counts {
        let files = match xtask::read_sources(root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("[files]");
        for (rel, count) in xtask::unsafe_counts(&files) {
            println!("\"{rel}\" = {count}");
        }
        return ExitCode::SUCCESS;
    }
    match xtask::run_lint(root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} finding(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
