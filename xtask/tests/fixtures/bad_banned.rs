// Negative fixture for `cargo xtask lint`: all three banned patterns —
// `partial_cmp(..).unwrap()`, `thread::spawn` outside core::parallel,
// and a bare `.unwrap()` in library code.

pub fn max_f64(xs: &[f64]) -> f64 {
    let mut best = f64::MIN;
    for &x in xs {
        if x.partial_cmp(&best).unwrap() == std::cmp::Ordering::Greater {
            best = x;
        }
    }
    best
}

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}

pub fn head(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
