// Negative fixture: nested acquisition that climbs the registry levels
// instead of descending — one inverted pair away from deadlock. Must
// fail `cargo xtask lint` with `lock-order`.

pub struct World {
    // LOCK: 10 — leaf.
    low: std::sync::Mutex<u32>,
    // LOCK: 50 — outermost.
    high: std::sync::Mutex<u32>,
}

impl World {
    pub fn inverted(&self) -> u32 {
        let low = self.low.lock().unwrap();
        // Acquiring level 50 while holding level 10 inverts the order.
        let high = self.high.lock().unwrap();
        let v = *low + *high;
        drop(high);
        drop(low);
        v
    }
}
