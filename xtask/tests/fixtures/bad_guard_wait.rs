// Negative fixture: a Condvar wait that parks while a *different* lock
// is still held — the producer that would signal `ready` needs `items`
// and never gets it. Must fail `cargo xtask lint` with
// `guard-across-wait`.

pub struct Queue {
    // LOCK: 20 — produced items.
    items: std::sync::Mutex<Vec<u32>>,
    // LOCK: 10 — consumer cursor.
    cursor: std::sync::Mutex<usize>,
    // LOCK: 10 — gates `cursor`; a wait releases it while parked.
    ready: std::sync::Condvar,
}

impl Queue {
    pub fn pop(&self) -> u32 {
        let items = self.items.lock().unwrap();
        let mut cur = self.cursor.lock().unwrap();
        // The wait releases `cursor` but sleeps with `items` locked.
        cur = self.ready.wait(cur).unwrap();
        let i = *cur;
        drop(cur);
        *items.get(i).unwrap_or(&0)
    }
}
