// Negative fixture for `cargo xtask lint`: an atomic load whose memory
// ordering carries no `// ORDERING:` justification. The lint must
// report `ordering-justified`.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn peek(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Acquire)
}
