// Negative fixture: a lock-shaped field missing from
// `xtask/lock_registry.toml`. Must fail `cargo xtask lint` with
// `lock-registry` (and, were it registered, would still need its
// `// LOCK:` comment).

pub struct Cache {
    map: std::sync::Mutex<Vec<u32>>,
}

impl Cache {
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }
}
