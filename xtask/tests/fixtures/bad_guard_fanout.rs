// Negative fixture: a guard held across the pool fan-out — the
// tail-latency cliff the guard-scope tracker exists to catch. Must fail
// `cargo xtask lint` with `guard-across-blocking`.

pub struct Pipeline {
    // LOCK: 15 — the pool handle.
    pool: std::sync::Mutex<u32>,
    // LOCK: 25 — refresh state.
    inner: std::sync::Mutex<u32>,
}

impl Pipeline {
    fn run_query(&self, n: usize) -> u32 {
        n as u32
    }

    pub fn refresh(&self) -> u32 {
        let guard = self.inner.lock().unwrap();
        // Every concurrent reader now queues behind the whole fan-out.
        let out = self.run_query(*guard as usize);
        drop(guard);
        out
    }
}
