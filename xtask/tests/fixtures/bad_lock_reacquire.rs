// Negative fixture, pinned from a real finding: `FlushPipeline`'s
// stats path used to take the pool mutex three separate times per pass,
// each acquisition observing a possibly different pool (the fix is
// `FlushPipeline::pool_probe`, one acquisition for all three facts).
// Must fail `cargo xtask lint` with `lock-consolidate`.

pub struct Pool {
    pub budget: usize,
    pub spawned: bool,
    pub reuse: u64,
}

pub struct Pipeline {
    // LOCK: 15 — the pool handle.
    pool: std::sync::Mutex<Pool>,
}

impl Pipeline {
    pub fn probe(&self) -> (usize, bool, u64) {
        let budget = self.pool.lock().unwrap().budget;
        let spawned = self.pool.lock().unwrap().spawned;
        let reuse = self.pool.lock().unwrap().reuse;
        (budget, spawned, reuse)
    }
}
