// Negative fixture: a panicking operation (`[idx]` indexing) inside a
// guard's live scope — an out-of-bounds access poisons the lock for
// every other thread. Must fail `cargo xtask lint` with
// `poison-surface`.

pub struct Table {
    // LOCK: 30 — row store.
    rows: std::sync::Mutex<Vec<u32>>,
}

impl Table {
    pub fn row(&self, i: usize) -> u32 {
        let rows = self.rows.lock().unwrap();
        let v = rows[i];
        drop(rows);
        v
    }
}
