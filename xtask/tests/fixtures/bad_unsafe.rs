// Negative fixture for `cargo xtask lint`: an unsafe block with no
// `// SAFETY:` comment, in a file with no unsafe_registry.toml entry.
// The lint must report both `unsafe-safety` and `unsafe-registry`.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
