//! Integration tests for `cargo xtask lint`: the seeded negative
//! fixtures under `tests/fixtures/` must FAIL the lint with the
//! expected rules, and the real workspace must PASS it (which makes the
//! lint part of tier-1 `cargo test`, not just a CI step).

use std::collections::BTreeMap;
use std::path::Path;
use xtask::{lint_sources, parse_lock_registry, run_lint, LockRegistry, Violation};

fn fixture(name: &str) -> Vec<(String, String)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    // Present the fixture as ordinary library code so every rule applies.
    vec![(format!("crates/fixture/src/{name}"), src)]
}

fn rules(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

/// Lint one fixture against an inline lock-registry TOML and assert the
/// expected rule fires.
fn assert_lock_rule(name: &str, registry_toml: &str, expected: &str) {
    let locks = parse_lock_registry(registry_toml, "inline").expect("fixture registry parses");
    let v = lint_sources(&fixture(name), &BTreeMap::new(), &[], &locks);
    assert!(
        rules(&v).contains(&expected),
        "{expected} must fire on {name}: {v:?}"
    );
}

/// Shorthand for a `[[lock]]` entry scoped to `name`'s fixture path.
fn lock_entry(name: &str, field: &str, kind: &str, level: i64) -> String {
    format!(
        "[[lock]]\nfield = \"{field}\"\nfile = \"crates/fixture/src/{name}\"\nkind = \"{kind}\"\nlevel = {level}\n"
    )
}

#[test]
fn unregistered_undocumented_unsafe_fails_the_lint() {
    let v = lint_sources(
        &fixture("bad_unsafe.rs"),
        &BTreeMap::new(),
        &[],
        &LockRegistry::default(),
    );
    let rules = rules(&v);
    assert!(
        rules.contains(&"unsafe-safety"),
        "missing SAFETY comment must be reported: {v:?}"
    );
    assert!(
        rules.contains(&"unsafe-registry"),
        "unregistered unsafe site must be reported: {v:?}"
    );
}

#[test]
fn unjustified_atomic_ordering_fails_the_lint() {
    let v = lint_sources(
        &fixture("bad_ordering.rs"),
        &BTreeMap::new(),
        &[],
        &LockRegistry::default(),
    );
    assert!(
        rules(&v).contains(&"ordering-justified"),
        "missing ORDERING justification must be reported: {v:?}"
    );
}

#[test]
fn banned_patterns_fail_the_lint() {
    let v = lint_sources(
        &fixture("bad_banned.rs"),
        &BTreeMap::new(),
        &[],
        &LockRegistry::default(),
    );
    let rules = rules(&v);
    for expected in ["no-partial-cmp-unwrap", "no-thread-spawn", "no-unwrap"] {
        assert!(
            rules.contains(&expected),
            "{expected} must fire on the fixture: {v:?}"
        );
    }
}

#[test]
fn registry_count_mismatch_fails_even_with_safety_comments() {
    // A documented unsafe site still fails when the registry disagrees:
    // the inventory must be updated in the same diff.
    let files = vec![(
        "crates/fixture/src/lib.rs".to_string(),
        "pub fn read_raw(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n"
            .to_string(),
    )];
    let mut registry = BTreeMap::new();
    registry.insert("crates/fixture/src/lib.rs".to_string(), 2usize);
    let v = lint_sources(&files, &registry, &[], &LockRegistry::default());
    assert!(
        rules(&v).contains(&"unsafe-registry"),
        "stale registry count must be reported: {v:?}"
    );
}

#[test]
fn guard_held_across_pool_fanout_fails_the_lint() {
    let name = "bad_guard_fanout.rs";
    let toml = format!(
        "{}{}[[blocking]]\ncall = \"run_query(\"\nunless_guard = \"pool\"\nreason = \"fans out over the pool\"\n",
        lock_entry(name, "Pipeline.pool", "mutex", 15),
        lock_entry(name, "Pipeline.inner", "mutex", 25),
    );
    assert_lock_rule(name, &toml, "guard-across-blocking");
}

#[test]
fn guard_held_across_condvar_wait_fails_the_lint() {
    let name = "bad_guard_wait.rs";
    let toml = format!(
        "{}{}{}",
        lock_entry(name, "Queue.items", "mutex", 20),
        lock_entry(name, "Queue.cursor", "mutex", 10),
        lock_entry(name, "Queue.ready", "condvar", 10),
    );
    assert_lock_rule(name, &toml, "guard-across-wait");
}

#[test]
fn unregistered_lock_field_fails_the_lint() {
    // No registry at all: the Mutex field itself is the finding.
    let locks = LockRegistry::default();
    let v = lint_sources(
        &fixture("bad_lock_unregistered.rs"),
        &BTreeMap::new(),
        &[],
        &locks,
    );
    assert!(
        rules(&v).contains(&"lock-registry"),
        "unregistered lock field must be reported: {v:?}"
    );
}

#[test]
fn stale_lock_registry_entry_fails_the_lint() {
    // The registry names a field no source file declares.
    let toml = lock_entry("bad_lock_order.rs", "World.gone", "mutex", 5);
    let locks = parse_lock_registry(&toml, "inline").expect("registry parses");
    let v = lint_sources(
        &fixture("bad_lock_unregistered.rs"),
        &BTreeMap::new(),
        &[],
        &locks,
    );
    assert!(
        v.iter()
            .any(|v| v.rule == "lock-registry" && v.msg.contains("stale")),
        "stale registry entry must be reported: {v:?}"
    );
}

#[test]
fn inverted_lock_order_fails_the_lint() {
    let name = "bad_lock_order.rs";
    let toml = format!(
        "{}{}",
        lock_entry(name, "World.low", "mutex", 10),
        lock_entry(name, "World.high", "mutex", 50),
    );
    assert_lock_rule(name, &toml, "lock-order");
}

#[test]
fn poison_surface_under_guard_fails_the_lint() {
    let name = "bad_poison_guard.rs";
    let toml = lock_entry(name, "Table.rows", "mutex", 30);
    assert_lock_rule(name, &toml, "poison-surface");
}

#[test]
fn repeated_lock_acquisition_fails_the_lint() {
    // Pinned from the pre-consolidation FlushPipeline stats path.
    let name = "bad_lock_reacquire.rs";
    let toml = lock_entry(name, "Pipeline.pool", "mutex", 15);
    assert_lock_rule(name, &toml, "lock-consolidate");
}

#[test]
fn missing_lock_comment_fails_the_lint() {
    // Same field as the unregistered fixture, but registered: what is
    // missing now is the adjacent `// LOCK:` comment.
    let name = "bad_lock_unregistered.rs";
    let toml = lock_entry(name, "Cache.map", "mutex", 5);
    assert_lock_rule(name, &toml, "lock-comment");
}

#[test]
fn the_workspace_itself_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level under the workspace root");
    let v = run_lint(root).expect("lint configuration loads");
    assert!(
        v.is_empty(),
        "workspace lint findings:\n{}",
        v.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
