//! Integration tests for `cargo xtask lint`: the seeded negative
//! fixtures under `tests/fixtures/` must FAIL the lint with the
//! expected rules, and the real workspace must PASS it (which makes the
//! lint part of tier-1 `cargo test`, not just a CI step).

use std::collections::BTreeMap;
use std::path::Path;
use xtask::{lint_sources, run_lint, Violation};

fn fixture(name: &str) -> Vec<(String, String)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    // Present the fixture as ordinary library code so every rule applies.
    vec![(format!("crates/fixture/src/{name}"), src)]
}

fn rules(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn unregistered_undocumented_unsafe_fails_the_lint() {
    let v = lint_sources(&fixture("bad_unsafe.rs"), &BTreeMap::new(), &[]);
    let rules = rules(&v);
    assert!(
        rules.contains(&"unsafe-safety"),
        "missing SAFETY comment must be reported: {v:?}"
    );
    assert!(
        rules.contains(&"unsafe-registry"),
        "unregistered unsafe site must be reported: {v:?}"
    );
}

#[test]
fn unjustified_atomic_ordering_fails_the_lint() {
    let v = lint_sources(&fixture("bad_ordering.rs"), &BTreeMap::new(), &[]);
    assert!(
        rules(&v).contains(&"ordering-justified"),
        "missing ORDERING justification must be reported: {v:?}"
    );
}

#[test]
fn banned_patterns_fail_the_lint() {
    let v = lint_sources(&fixture("bad_banned.rs"), &BTreeMap::new(), &[]);
    let rules = rules(&v);
    for expected in ["no-partial-cmp-unwrap", "no-thread-spawn", "no-unwrap"] {
        assert!(
            rules.contains(&expected),
            "{expected} must fire on the fixture: {v:?}"
        );
    }
}

#[test]
fn registry_count_mismatch_fails_even_with_safety_comments() {
    // A documented unsafe site still fails when the registry disagrees:
    // the inventory must be updated in the same diff.
    let files = vec![(
        "crates/fixture/src/lib.rs".to_string(),
        "pub fn read_raw(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n"
            .to_string(),
    )];
    let mut registry = BTreeMap::new();
    registry.insert("crates/fixture/src/lib.rs".to_string(), 2usize);
    let v = lint_sources(&files, &registry, &[]);
    assert!(
        rules(&v).contains(&"unsafe-registry"),
        "stale registry count must be reported: {v:?}"
    );
}

#[test]
fn the_workspace_itself_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level under the workspace root");
    let v = run_lint(root).expect("lint configuration loads");
    assert!(
        v.is_empty(),
        "workspace lint findings:\n{}",
        v.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
